//! Mergeable span statistics and the machine-readable self-report.
//!
//! [`ProfileReport`] is what [`crate::take_thread_profile`] drains into:
//! per-span call counts, inclusive/self nanoseconds, self-attributed
//! allocations, and a power-of-two duration histogram (reusing
//! [`spdyier_trace::Histogram`], the same shape the metrics registry
//! uses). Reports merge across threads/shards, and roll up into
//! per-subsystem rows (everything before the first `.` of a span name),
//! which — because self-columns exclude nested spans — partition the
//! profiled wall-time and allocations exactly.
//!
//! [`SelfReport`] is the `profile_*.json` artifact: schema-versioned,
//! `BTreeMap`-keyed (so the key set and order are deterministic even
//! though the host timings inside are not), combining the span table
//! with run-level facts (wall-time, total allocations, events/s, trace
//! sink throughput and drops, peak RSS).

use std::collections::BTreeMap;

use serde::Serialize;
use spdyier_trace::Histogram;

/// Schema version stamped into `profile_*.json` (bump on breaking
/// key-set changes; golden tests pin it).
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Accumulated statistics for one span name.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SpanStats {
    /// Times the span was entered.
    pub calls: u64,
    /// Inclusive host nanoseconds (contains nested spans).
    pub total_ns: u64,
    /// Self host nanoseconds (nested spans excluded).
    pub self_ns: u64,
    /// Allocations attributed to the span itself.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Power-of-two histogram of per-call inclusive nanoseconds.
    pub ns: Histogram,
}

impl SpanStats {
    /// Fold another span's statistics into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.allocs += other.allocs;
        self.alloc_bytes += other.alloc_bytes;
        self.ns.merge(&other.ns);
    }
}

/// A span table: scope name → statistics, deterministically ordered.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ProfileReport {
    /// Per-span statistics keyed by scope name.
    pub spans: BTreeMap<String, SpanStats>,
}

impl ProfileReport {
    /// An empty report.
    pub fn new() -> ProfileReport {
        ProfileReport::default()
    }

    /// True when no span recorded anything.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Fold another report into this one (span-wise merge). Shard-level
    /// reports combine without retaining anything per cell.
    pub fn merge(&mut self, other: &ProfileReport) {
        for (name, stats) in &other.spans {
            self.spans.entry(name.clone()).or_default().merge(stats);
        }
    }

    /// Roll spans up by subsystem — the prefix before the first `.` of
    /// the span name (`"driver.deliver"` → `"driver"`). Self-columns
    /// partition exactly, so subsystem rows sum to the profiled totals.
    pub fn subsystems(&self) -> BTreeMap<String, SubsystemStats> {
        let mut out: BTreeMap<String, SubsystemStats> = BTreeMap::new();
        for (name, stats) in &self.spans {
            let key = name.split('.').next().unwrap_or(name).to_string();
            let row = out.entry(key).or_default();
            row.calls += stats.calls;
            row.self_ns += stats.self_ns;
            row.allocs += stats.allocs;
            row.alloc_bytes += stats.alloc_bytes;
        }
        out
    }
}

/// One subsystem row of the rollup (self-attributed, so rows partition
/// the profiled time and allocations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SubsystemStats {
    /// Spans entered under this subsystem.
    pub calls: u64,
    /// Self host nanoseconds.
    pub self_ns: u64,
    /// Self-attributed allocations.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// Trace-sink throughput facts for the self-report.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SinkReport {
    /// Events that passed the recorder's level gate.
    pub emitted: u64,
    /// Events the sink retained to the end of the run.
    pub retained: u64,
    /// Events the sink shed (ring overflow / write failures).
    pub dropped: u64,
    /// Emitted events per host second over the profiled window.
    pub events_per_sec: f64,
}

/// The end-of-run `profile_*.json` artifact.
#[derive(Debug, Clone, Serialize)]
pub struct SelfReport {
    /// [`PROFILE_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Whether the span profiler was enabled for the run.
    pub profiler_enabled: bool,
    /// What was profiled (`"http 3g seeds=1"` style, caller-defined).
    pub workload: String,
    /// Host wall-time of the profiled window, milliseconds.
    pub wall_ms: f64,
    /// Simulated visits completed in the window.
    pub visits: u64,
    /// Process-wide allocations over the window.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// `allocs / visits` (0 when no visit completed).
    pub allocs_per_visit: f64,
    /// Trace events emitted in the window.
    pub events: u64,
    /// Trace events per host second.
    pub events_per_sec: f64,
    /// Trace sink throughput and loss.
    pub sink: SinkReport,
    /// Peak resident set size, kilobytes.
    pub peak_rss_kb: u64,
    /// Per-subsystem rollup of the span table.
    pub subsystems: BTreeMap<String, SubsystemStats>,
    /// The full span table.
    pub spans: BTreeMap<String, SpanStats>,
}

impl SelfReport {
    /// Assemble a self-report from a merged span table and run-level
    /// facts. `wall_ms` of 0 yields 0 rates rather than infinities.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        workload: String,
        profile: &ProfileReport,
        wall_ms: f64,
        visits: u64,
        alloc_delta: crate::AllocCounts,
        events: u64,
        sink: SinkReport,
    ) -> SelfReport {
        let secs = wall_ms / 1e3;
        let rate = |n: u64| if secs > 0.0 { n as f64 / secs } else { 0.0 };
        SelfReport {
            schema_version: PROFILE_SCHEMA_VERSION,
            profiler_enabled: crate::enabled(),
            workload,
            wall_ms,
            visits,
            allocs: alloc_delta.allocs,
            alloc_bytes: alloc_delta.bytes,
            allocs_per_visit: if visits > 0 {
                alloc_delta.allocs as f64 / visits as f64
            } else {
                0.0
            },
            events,
            events_per_sec: rate(events),
            sink,
            peak_rss_kb: peak_rss_kb(),
            subsystems: profile.subsystems(),
            spans: profile.spans.clone(),
        }
    }

    /// Render as pretty JSON (deterministic key set and order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("self-report serializes")
    }
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`; 0 where unavailable).
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(calls: u64, self_ns: u64, allocs: u64) -> SpanStats {
        let mut s = SpanStats {
            calls,
            total_ns: self_ns,
            self_ns,
            allocs,
            alloc_bytes: allocs * 8,
            ns: Histogram::default(),
        };
        s.ns.observe(self_ns);
        s
    }

    #[test]
    fn merge_accumulates_span_wise() {
        let mut a = ProfileReport::new();
        a.spans.insert("tcp.deliver".into(), span(2, 100, 4));
        let mut b = ProfileReport::new();
        b.spans.insert("tcp.deliver".into(), span(3, 50, 1));
        b.spans.insert("driver.timer".into(), span(1, 10, 0));
        a.merge(&b);
        assert_eq!(a.spans.len(), 2);
        let t = &a.spans["tcp.deliver"];
        assert_eq!(t.calls, 5);
        assert_eq!(t.self_ns, 150);
        assert_eq!(t.allocs, 5);
        assert_eq!(t.ns.count, 2);
    }

    #[test]
    fn subsystem_rollup_groups_by_prefix() {
        let mut r = ProfileReport::new();
        r.spans.insert("driver.deliver".into(), span(1, 100, 2));
        r.spans.insert("driver.timer".into(), span(1, 50, 1));
        r.spans.insert("world.drain_tx".into(), span(4, 25, 7));
        let subs = r.subsystems();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs["driver"].self_ns, 150);
        assert_eq!(subs["driver"].calls, 2);
        assert_eq!(subs["world"].allocs, 7);
    }

    #[test]
    fn self_report_has_stable_schema() {
        let report = SelfReport::assemble(
            "test".into(),
            &ProfileReport::new(),
            1000.0,
            10,
            crate::AllocCounts {
                allocs: 100,
                bytes: 800,
            },
            5000,
            SinkReport::default(),
        );
        assert_eq!(report.schema_version, PROFILE_SCHEMA_VERSION);
        assert!((report.allocs_per_visit - 10.0).abs() < 1e-9);
        assert!((report.events_per_sec - 5000.0).abs() < 1e-6);
        let json = report.to_json();
        for key in [
            "\"schema_version\"",
            "\"profiler_enabled\"",
            "\"workload\"",
            "\"wall_ms\"",
            "\"visits\"",
            "\"allocs\"",
            "\"alloc_bytes\"",
            "\"allocs_per_visit\"",
            "\"events\"",
            "\"events_per_sec\"",
            "\"sink\"",
            "\"peak_rss_kb\"",
            "\"subsystems\"",
            "\"spans\"",
        ] {
            assert!(json.contains(key), "profile json missing {key}: {json}");
        }
    }

    #[test]
    fn zero_wall_time_yields_zero_rates() {
        let r = SelfReport::assemble(
            "t".into(),
            &ProfileReport::new(),
            0.0,
            0,
            crate::AllocCounts::default(),
            100,
            SinkReport::default(),
        );
        assert_eq!(r.events_per_sec, 0.0);
        assert_eq!(r.allocs_per_visit, 0.0);
    }
}
