//! The scoped span profiler.
//!
//! `let _p = prof::scope("driver.deliver");` opens a span; dropping the
//! guard records the span's host-nanosecond duration (into a
//! power-of-two histogram) and the allocations performed inside it
//! (from the [`crate::alloc`] thread-local counters). Spans nest: a
//! span's *self* time and *self* allocations exclude everything charged
//! to spans opened inside it, so summing self-columns across all spans
//! partitions the profiled wall-time exactly — no double counting in
//! subsystem rollups.
//!
//! The hot path is built for simulations that open a span per event
//! (hundreds of thousands per second):
//!
//! - All per-span state (name, entry counters, start time) lives in the
//!   [`Scope`] guard on the caller's stack — there is no thread-local
//!   frame stack to push and pop.
//! - Nesting is tracked by a single thread-local *child accumulator*:
//!   opening a span saves and zeroes it, closing a span reads it (those
//!   are the children's inclusive costs) and restores the saved value
//!   plus the span's own inclusive cost.
//! - Time is read with the CPU timestamp counter on `x86_64` (a
//!   fraction of a `clock_gettime` call) and converted to nanoseconds
//!   with a factor calibrated once per process in
//!   [`crate::set_enabled`]`(true)`.
//!
//! Storage is thread-local (profiled sweeps fan runs across worker
//! threads); [`take_thread_profile`] drains the calling thread's
//! accumulated spans into a mergeable [`ProfileReport`]. The parallel
//! sweep helper drains after every cell and folds into one shared
//! report.
//!
//! Disabled mode ([`crate::enabled`] false) costs one relaxed atomic
//! load per [`scope`] call: the guard is inert, nothing is timed, and
//! no thread-local is touched.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::alloc::{thread_counts, AllocCounts};
use crate::report::{ProfileReport, SpanStats};

/// Inclusive cost (ticks, allocations, bytes) that closed child spans
/// have charged to the innermost still-open span.
#[derive(Clone, Copy, Default)]
struct ChildAccum {
    ticks: u64,
    allocs: u64,
    bytes: u64,
}

struct TlChild {
    ticks: Cell<u64>,
    allocs: Cell<u64>,
    bytes: Cell<u64>,
}

thread_local! {
    static CHILD: TlChild = const {
        TlChild {
            ticks: Cell::new(0),
            allocs: Cell::new(0),
            bytes: Cell::new(0),
        }
    };
    static SPANS: RefCell<Vec<(&'static str, SpanStats)>> = const { RefCell::new(Vec::new()) };
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn now_ticks() -> u64 {
    // Safe on every x86_64 the toolchain targets; non-serializing, which
    // is fine at profiling granularity.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn now_ticks() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds per tick as `f64` bits; 0 = not yet calibrated.
static NS_PER_TICK_BITS: AtomicU64 = AtomicU64::new(0);

/// Measure the tick rate against the monotonic clock. Called from
/// [`crate::set_enabled`]`(true)` so the ~5 ms spin happens before the
/// profiled region, not inside a span.
pub(crate) fn calibrate_ticks() {
    if NS_PER_TICK_BITS.load(Ordering::Relaxed) != 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        let t0 = std::time::Instant::now();
        let c0 = now_ticks();
        while t0.elapsed() < std::time::Duration::from_millis(5) {
            std::hint::spin_loop();
        }
        let ns = t0.elapsed().as_nanos() as f64;
        let ticks = now_ticks().wrapping_sub(c0).max(1);
        NS_PER_TICK_BITS.store((ns / ticks as f64).to_bits(), Ordering::Relaxed);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // `now_ticks` already returns nanoseconds.
        NS_PER_TICK_BITS.store(1.0f64.to_bits(), Ordering::Relaxed);
    }
}

#[inline]
fn ticks_to_ns(ticks: u64) -> u64 {
    let mut bits = NS_PER_TICK_BITS.load(Ordering::Relaxed);
    if bits == 0 {
        // Fallback for spans recorded without `set_enabled(true)` having
        // run (tests driving internals directly). The spin lands in the
        // enclosing span's self-time — once per process.
        calibrate_ticks();
        bits = NS_PER_TICK_BITS.load(Ordering::Relaxed);
    }
    (ticks as f64 * f64::from_bits(bits)) as u64
}

fn stats_mut<'a>(
    spans: &'a mut Vec<(&'static str, SpanStats)>,
    name: &'static str,
) -> &'a mut SpanStats {
    // Span names are `&'static str` literals, so the lookup first tries
    // pointer equality (all call sites of one scope share a literal)
    // before falling back to a content compare — a linear scan over the
    // handful of distinct spans.
    let pos = spans
        .iter()
        .position(|(n, _)| std::ptr::eq(*n, name) || *n == name);
    let idx = match pos {
        Some(i) => i,
        None => {
            spans.push((name, SpanStats::default()));
            spans.len() - 1
        }
    };
    &mut spans[idx].1
}

/// A span guard; the span closes (and records) when this drops.
///
/// Hold it in a `let _p = ...;` binding — `let _ = ...` drops
/// immediately and records an empty span.
#[must_use = "binding the guard to `_` closes the span immediately"]
pub struct Scope {
    active: bool,
    name: &'static str,
    start_ticks: u64,
    at_entry: AllocCounts,
    /// The parent's child-accumulator, saved while this span owns the
    /// thread-local one.
    saved_child: ChildAccum,
}

impl Scope {
    /// An inert guard (what [`scope`] returns while disabled).
    pub fn off() -> Scope {
        Scope {
            active: false,
            name: "",
            start_ticks: 0,
            at_entry: AllocCounts::default(),
            saved_child: ChildAccum::default(),
        }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let total_ticks = now_ticks().wrapping_sub(self.start_ticks);
        let d = thread_counts().since(self.at_entry);
        // Collect what nested spans charged while this one was open, and
        // charge this span's inclusive cost to its parent.
        let kids = CHILD.with(|c| {
            let k = ChildAccum {
                ticks: c.ticks.get(),
                allocs: c.allocs.get(),
                bytes: c.bytes.get(),
            };
            c.ticks
                .set(self.saved_child.ticks.wrapping_add(total_ticks));
            c.allocs.set(self.saved_child.allocs.wrapping_add(d.allocs));
            c.bytes.set(self.saved_child.bytes.wrapping_add(d.bytes));
            k
        });
        let total_ns = ticks_to_ns(total_ticks);
        let child_ns = ticks_to_ns(kids.ticks);
        SPANS.with(|s| {
            let mut spans = s.borrow_mut();
            let stats = stats_mut(&mut spans, self.name);
            stats.calls += 1;
            stats.total_ns += total_ns;
            stats.self_ns += total_ns.saturating_sub(child_ns);
            stats.allocs += d.allocs.saturating_sub(kids.allocs);
            stats.alloc_bytes += d.bytes.saturating_sub(kids.bytes);
            stats.ns.observe(total_ns);
        });
    }
}

/// Open a profiling span named `name` (`layer.event_kind` by
/// convention: `"driver.deliver"`, `"world.drain_tx"`, …).
///
/// While the profiler is disabled this is one relaxed atomic load and
/// returns an inert guard.
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !crate::enabled() {
        return Scope::off();
    }
    let saved_child = CHILD.with(|c| {
        let s = ChildAccum {
            ticks: c.ticks.get(),
            allocs: c.allocs.get(),
            bytes: c.bytes.get(),
        };
        c.ticks.set(0);
        c.allocs.set(0);
        c.bytes.set(0);
        s
    });
    Scope {
        active: true,
        name,
        at_entry: thread_counts(),
        saved_child,
        start_ticks: now_ticks(),
    }
}

/// Drain the calling thread's finished spans into a [`ProfileReport`],
/// leaving open scopes (if any) untouched. Used by sweep workers after
/// each cell so per-cell attribution lands in one mergeable report.
pub fn take_thread_profile() -> ProfileReport {
    SPANS.with(|s| {
        let mut spans = s.borrow_mut();
        let mut report = ProfileReport::default();
        for (name, stats) in spans.drain(..) {
            report.spans.insert(name.to_string(), stats);
        }
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn spin_for_ns(ns: u64) {
        let t0 = Instant::now();
        while (t0.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let _guard = crate::test_guard();
        crate::set_enabled(false);
        let _ = take_thread_profile();
        {
            let _p = scope("test.disabled");
            spin_for_ns(1_000);
        }
        assert!(take_thread_profile().spans.is_empty());
    }

    #[test]
    fn nested_scopes_split_self_and_total_time() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let _ = take_thread_profile();
        {
            let _outer = scope("test.outer");
            spin_for_ns(200_000);
            {
                let _inner = scope("test.inner");
                spin_for_ns(400_000);
            }
        }
        crate::set_enabled(false);
        let report = take_thread_profile();
        let outer = &report.spans["test.outer"];
        let inner = &report.spans["test.inner"];
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(inner.total_ns >= 300_000, "inner {}", inner.total_ns);
        assert!(
            outer.total_ns >= inner.total_ns,
            "outer span includes inner"
        );
        assert!(
            outer.self_ns < outer.total_ns,
            "outer self-time excludes the inner span \
             (self {} vs total {})",
            outer.self_ns,
            outer.total_ns
        );
        assert_eq!(inner.self_ns, inner.total_ns, "leaf span is all self");
        assert_eq!(inner.ns.count, 1, "per-call histogram populated");
    }

    #[test]
    fn scope_attributes_allocations_to_self() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let _ = take_thread_profile();
        {
            let _outer = scope("test.alloc_outer");
            {
                let _inner = scope("test.alloc_inner");
                let v: Vec<u64> = Vec::with_capacity(10_000);
                drop(v);
            }
        }
        crate::set_enabled(false);
        let report = take_thread_profile();
        let inner = &report.spans["test.alloc_inner"];
        let outer = &report.spans["test.alloc_outer"];
        assert!(inner.allocs >= 1, "inner scope saw its allocation");
        assert!(inner.alloc_bytes >= 80_000, "bytes: {}", inner.alloc_bytes);
        // The outer span may be charged a few bytes of profiler
        // bookkeeping (span-table growth), but never the inner payload.
        assert!(
            outer.alloc_bytes < 80_000,
            "inner allocation double-charged: {}",
            outer.alloc_bytes
        );
    }

    #[test]
    fn repeated_calls_accumulate() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let _ = take_thread_profile();
        for _ in 0..5 {
            let _p = scope("test.repeat");
        }
        crate::set_enabled(false);
        let report = take_thread_profile();
        assert_eq!(report.spans["test.repeat"].calls, 5);
        assert_eq!(report.spans["test.repeat"].ns.count, 5);
    }

    #[test]
    fn sibling_spans_charge_the_right_parent() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let _ = take_thread_profile();
        {
            let _outer = scope("test.sib_outer");
            for _ in 0..3 {
                let _inner = scope("test.sib_inner");
                spin_for_ns(50_000);
            }
        }
        crate::set_enabled(false);
        let report = take_thread_profile();
        let outer = &report.spans["test.sib_outer"];
        let inner = &report.spans["test.sib_inner"];
        assert_eq!(inner.calls, 3);
        assert!(
            outer.self_ns <= outer.total_ns.saturating_sub(inner.total_ns) + 10_000,
            "outer self {} should exclude all three inner spans (outer total {}, inner total {})",
            outer.self_ns,
            outer.total_ns,
            inner.total_ns
        );
    }
}
