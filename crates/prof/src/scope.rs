//! The scoped span profiler.
//!
//! `let _p = prof::scope("driver.deliver");` opens a span; dropping the
//! guard records the span's host-nanosecond duration (into a
//! power-of-two histogram) and the allocations performed inside it
//! (from the [`crate::alloc`] thread-local counters). Spans nest: a
//! span's *self* time and *self* allocations exclude everything charged
//! to spans opened inside it, so summing self-columns across all spans
//! partitions the profiled wall-time exactly — no double counting in
//! subsystem rollups.
//!
//! Storage is thread-local (profiled sweeps fan runs across worker
//! threads); [`take_thread_profile`] drains the calling thread's
//! accumulated spans into a mergeable [`ProfileReport`]. The parallel
//! sweep helper drains after every cell and folds into one shared
//! report.
//!
//! Disabled mode ([`crate::enabled`] false) costs one relaxed atomic
//! load per [`scope`] call: the guard is inert, nothing is timed, and
//! no thread-local is touched.

use std::cell::RefCell;
use std::time::Instant;

use crate::alloc::{thread_counts, AllocCounts};
use crate::report::{ProfileReport, SpanStats};

/// One open span on the thread's scope stack.
struct Frame {
    name: &'static str,
    start: Instant,
    at_entry: AllocCounts,
    /// Inclusive nanos charged to scopes nested inside this one.
    child_ns: u64,
    /// Allocations charged to scopes nested inside this one.
    child_allocs: u64,
    child_bytes: u64,
}

/// Per-thread profiler state: the open-scope stack plus the finished
/// span statistics, keyed by scope name. Span names are `&'static str`
/// literals, so the lookup first tries pointer equality (all call sites
/// of one scope share a literal) before falling back to a content
/// compare — a linear scan over the handful of distinct spans.
struct ProfileCore {
    stack: Vec<Frame>,
    spans: Vec<(&'static str, SpanStats)>,
}

impl ProfileCore {
    const fn new() -> ProfileCore {
        ProfileCore {
            stack: Vec::new(),
            spans: Vec::new(),
        }
    }

    fn stats_mut(&mut self, name: &'static str) -> &mut SpanStats {
        let pos = self
            .spans
            .iter()
            .position(|(n, _)| std::ptr::eq(*n, name) || *n == name);
        let idx = match pos {
            Some(i) => i,
            None => {
                self.spans.push((name, SpanStats::default()));
                self.spans.len() - 1
            }
        };
        &mut self.spans[idx].1
    }

    fn push(&mut self, name: &'static str) {
        self.stack.push(Frame {
            name,
            start: Instant::now(),
            at_entry: thread_counts(),
            child_ns: 0,
            child_allocs: 0,
            child_bytes: 0,
        });
    }

    fn pop(&mut self) {
        let Some(frame) = self.stack.pop() else {
            // The profiler was flipped on while this guard was open (or
            // the stack was drained underneath it); nothing to record.
            return;
        };
        let total_ns = frame.start.elapsed().as_nanos() as u64;
        let d = thread_counts().since(frame.at_entry);
        let stats = self.stats_mut(frame.name);
        stats.calls += 1;
        stats.total_ns += total_ns;
        stats.self_ns += total_ns.saturating_sub(frame.child_ns);
        stats.allocs += d.allocs.saturating_sub(frame.child_allocs);
        stats.alloc_bytes += d.bytes.saturating_sub(frame.child_bytes);
        stats.ns.observe(total_ns);
        // Charge this span's inclusive cost to its parent, if any.
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += total_ns;
            parent.child_allocs += d.allocs;
            parent.child_bytes += d.bytes;
        }
    }
}

thread_local! {
    static CORE: RefCell<ProfileCore> = const { RefCell::new(ProfileCore::new()) };
}

/// A span guard; the span closes (and records) when this drops.
///
/// Hold it in a `let _p = ...;` binding — `let _ = ...` drops
/// immediately and records an empty span.
#[must_use = "binding the guard to `_` closes the span immediately"]
pub struct Scope {
    active: bool,
}

impl Scope {
    /// An inert guard (what [`scope`] returns while disabled).
    pub fn off() -> Scope {
        Scope { active: false }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.active {
            CORE.with(|c| c.borrow_mut().pop());
        }
    }
}

/// Open a profiling span named `name` (`layer.event_kind` by
/// convention: `"driver.deliver"`, `"world.drain_tx"`, …).
///
/// While the profiler is disabled this is one relaxed atomic load and
/// returns an inert guard.
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !crate::enabled() {
        return Scope::off();
    }
    CORE.with(|c| c.borrow_mut().push(name));
    Scope { active: true }
}

/// Drain the calling thread's finished spans into a [`ProfileReport`],
/// leaving open scopes (if any) untouched. Used by sweep workers after
/// each cell so per-cell attribution lands in one mergeable report.
pub fn take_thread_profile() -> ProfileReport {
    CORE.with(|c| {
        let mut core = c.borrow_mut();
        let mut report = ProfileReport::default();
        for (name, stats) in core.spans.drain(..) {
            report.spans.insert(name.to_string(), stats);
        }
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_for_ns(ns: u64) {
        let t0 = Instant::now();
        while (t0.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let _guard = crate::test_guard();
        crate::set_enabled(false);
        let _ = take_thread_profile();
        {
            let _p = scope("test.disabled");
            spin_for_ns(1_000);
        }
        assert!(take_thread_profile().spans.is_empty());
    }

    #[test]
    fn nested_scopes_split_self_and_total_time() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let _ = take_thread_profile();
        {
            let _outer = scope("test.outer");
            spin_for_ns(200_000);
            {
                let _inner = scope("test.inner");
                spin_for_ns(400_000);
            }
        }
        crate::set_enabled(false);
        let report = take_thread_profile();
        let outer = &report.spans["test.outer"];
        let inner = &report.spans["test.inner"];
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(inner.total_ns >= 400_000);
        assert!(
            outer.total_ns >= inner.total_ns,
            "outer span includes inner"
        );
        assert!(
            outer.self_ns < outer.total_ns,
            "outer self-time excludes the inner span \
             (self {} vs total {})",
            outer.self_ns,
            outer.total_ns
        );
        assert_eq!(inner.self_ns, inner.total_ns, "leaf span is all self");
        assert_eq!(inner.ns.count, 1, "per-call histogram populated");
    }

    #[test]
    fn scope_attributes_allocations_to_self() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let _ = take_thread_profile();
        {
            let _outer = scope("test.alloc_outer");
            {
                let _inner = scope("test.alloc_inner");
                let v: Vec<u64> = Vec::with_capacity(10_000);
                drop(v);
            }
        }
        crate::set_enabled(false);
        let report = take_thread_profile();
        let inner = &report.spans["test.alloc_inner"];
        let outer = &report.spans["test.alloc_outer"];
        assert!(inner.allocs >= 1, "inner scope saw its allocation");
        assert!(inner.alloc_bytes >= 80_000, "bytes: {}", inner.alloc_bytes);
        // The outer span may be charged a few bytes of profiler
        // bookkeeping (span-table growth), but never the inner payload.
        assert!(
            outer.alloc_bytes < 80_000,
            "inner allocation double-charged: {}",
            outer.alloc_bytes
        );
    }

    #[test]
    fn repeated_calls_accumulate() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let _ = take_thread_profile();
        for _ in 0..5 {
            let _p = scope("test.repeat");
        }
        crate::set_enabled(false);
        let report = take_thread_profile();
        assert_eq!(report.spans["test.repeat"].calls, 5);
        assert_eq!(report.spans["test.repeat"].ns.count, 5);
    }
}
