//! The web-page object model.
//!
//! A page is a set of objects with a *discovery* (dependency) forest rooted
//! at the main HTML document: the browser cannot know an object exists —
//! let alone request it — until the object that references it has been
//! downloaded **and evaluated**. The paper's §5.2 attributes SPDY's stepped
//! request pattern (Fig. 6) exactly to these interdependencies.

use serde::Serialize;
use spdyier_sim::SimDuration;

/// Index of an object within its page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct ObjectId(pub u32);

/// Content classes from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ObjectKind {
    /// HTML documents (the root, iframes, fragments).
    Html,
    /// JavaScript — evaluated sequentially, may reveal more objects.
    Script,
    /// CSS — evaluated, may reveal more objects (fonts, images).
    Stylesheet,
    /// Images.
    Image,
    /// Everything else (fonts, media, beacons).
    Other,
}

impl ObjectKind {
    /// SPDY/3 priority the browser assigns (0 = highest).
    pub fn spdy_priority(self) -> u8 {
        match self {
            ObjectKind::Html => 0,
            ObjectKind::Script | ObjectKind::Stylesheet => 1,
            ObjectKind::Image => 3,
            ObjectKind::Other => 4,
        }
    }

    /// Does downloading this object class trigger an evaluation step that
    /// can reveal further objects?
    pub fn is_evaluated(self) -> bool {
        matches!(
            self,
            ObjectKind::Html | ObjectKind::Script | ObjectKind::Stylesheet
        )
    }
}

/// One object on a page.
#[derive(Debug, Clone, Serialize)]
pub struct WebObject {
    /// Page-local id; the root HTML is always id 0.
    pub id: ObjectId,
    /// Domain serving the object.
    pub domain: String,
    /// Path on that domain.
    pub path: String,
    /// Body size, bytes.
    pub size: u64,
    /// Content class.
    pub kind: ObjectKind,
    /// The object whose evaluation reveals this one (`None` only for the
    /// root).
    pub discovered_by: Option<ObjectId>,
    /// Parse/evaluation time once downloaded (zero for images).
    pub eval_time: SimDuration,
}

/// A complete page.
#[derive(Debug, Clone, Serialize)]
pub struct WebPage {
    /// Site label (Table 1 category).
    pub name: String,
    /// All objects; index = `ObjectId.0`; `objects[0]` is the root HTML.
    pub objects: Vec<WebObject>,
}

impl WebPage {
    /// The root HTML document.
    pub fn root(&self) -> &WebObject {
        &self.objects[0]
    }

    /// Object by id.
    pub fn object(&self, id: ObjectId) -> &WebObject {
        &self.objects[id.0 as usize]
    }

    /// Number of objects including the root.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Total body bytes across objects.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.size).sum()
    }

    /// Distinct domains.
    pub fn domains(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.objects.iter().map(|o| o.domain.as_str()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Count of objects of a kind.
    pub fn count_kind(&self, kind: ObjectKind) -> usize {
        self.objects.iter().filter(|o| o.kind == kind).count()
    }

    /// Ids of objects directly revealed by `parent`'s evaluation.
    pub fn children_of(&self, parent: ObjectId) -> Vec<ObjectId> {
        self.children_iter(parent).collect()
    }

    /// Allocation-free variant of [`WebPage::children_of`]: iterate the
    /// ids of objects directly revealed by `parent`'s evaluation.
    pub fn children_iter(&self, parent: ObjectId) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects
            .iter()
            .filter(move |o| o.discovered_by == Some(parent))
            .map(|o| o.id)
    }

    /// Validate structural invariants (ids match indices, parents precede
    /// children, root is HTML, the discovery forest is acyclic by
    /// construction). Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.objects.is_empty() {
            return Err("page has no objects".into());
        }
        if self.objects[0].kind != ObjectKind::Html {
            return Err("root is not HTML".into());
        }
        if self.objects[0].discovered_by.is_some() {
            return Err("root has a parent".into());
        }
        for (i, o) in self.objects.iter().enumerate() {
            if o.id.0 as usize != i {
                return Err(format!("object {} id mismatch", i));
            }
            if let Some(parent) = o.discovered_by {
                if parent.0 as usize >= i {
                    return Err(format!(
                        "object {} discovered by later object {}",
                        i, parent.0
                    ));
                }
                if !self.objects[parent.0 as usize].kind.is_evaluated() {
                    return Err(format!("object {} discovered by non-evaluated parent", i));
                }
            } else if i != 0 {
                return Err(format!("non-root object {} has no parent", i));
            }
            if o.size == 0 {
                return Err(format!("object {} has zero size", i));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_page() -> WebPage {
        WebPage {
            name: "tiny".into(),
            objects: vec![
                WebObject {
                    id: ObjectId(0),
                    domain: "a.example".into(),
                    path: "/".into(),
                    size: 10_000,
                    kind: ObjectKind::Html,
                    discovered_by: None,
                    eval_time: SimDuration::from_millis(20),
                },
                WebObject {
                    id: ObjectId(1),
                    domain: "a.example".into(),
                    path: "/app.js".into(),
                    size: 30_000,
                    kind: ObjectKind::Script,
                    discovered_by: Some(ObjectId(0)),
                    eval_time: SimDuration::from_millis(15),
                },
                WebObject {
                    id: ObjectId(2),
                    domain: "cdn.example".into(),
                    path: "/hero.png".into(),
                    size: 80_000,
                    kind: ObjectKind::Image,
                    discovered_by: Some(ObjectId(1)),
                    eval_time: SimDuration::ZERO,
                },
            ],
        }
    }

    #[test]
    fn accessors() {
        let p = tiny_page();
        assert_eq!(p.object_count(), 3);
        assert_eq!(p.total_bytes(), 120_000);
        assert_eq!(p.domains(), vec!["a.example", "cdn.example"]);
        assert_eq!(p.count_kind(ObjectKind::Image), 1);
        assert_eq!(p.children_of(ObjectId(0)), vec![ObjectId(1)]);
        assert_eq!(p.children_of(ObjectId(1)), vec![ObjectId(2)]);
        assert_eq!(p.root().kind, ObjectKind::Html);
    }

    #[test]
    fn validates_well_formed_page() {
        assert_eq!(tiny_page().validate(), Ok(()));
    }

    #[test]
    fn rejects_root_anomalies() {
        let mut p = tiny_page();
        p.objects[0].kind = ObjectKind::Image;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_forward_discovery() {
        let mut p = tiny_page();
        p.objects[1].discovered_by = Some(ObjectId(2));
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_image_parents() {
        let mut p = tiny_page();
        // Make object 2 an image-parent of nothing — instead point 1 at an
        // image parent by reordering kinds.
        p.objects[0].kind = ObjectKind::Html;
        p.objects[1].discovered_by = Some(ObjectId(0));
        p.objects[1].kind = ObjectKind::Image;
        p.objects[2].discovered_by = Some(ObjectId(1));
        assert!(p.validate().is_err(), "images reveal nothing");
    }

    #[test]
    fn priorities_follow_content_class() {
        assert_eq!(ObjectKind::Html.spdy_priority(), 0);
        assert!(ObjectKind::Script.spdy_priority() < ObjectKind::Image.spdy_priority());
        assert!(ObjectKind::Html.is_evaluated());
        assert!(!ObjectKind::Image.is_evaluated());
    }
}
