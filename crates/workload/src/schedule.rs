//! Visit schedules.
//!
//! The paper's methodology: a random order over the 20 sites, fixed across
//! all runs of an experiment, one page every 60 seconds — long enough for
//! the load to finish and for the "think time" that lets the radio demote.

use serde::Serialize;
use spdyier_sim::{DetRng, SimDuration, SimTime};

/// A fixed visit order with a fixed inter-visit interval.
#[derive(Debug, Clone, Serialize)]
pub struct VisitSchedule {
    /// Site indices (1-based, matching Table 1) in visit order.
    pub order: Vec<u32>,
    /// Time between the start of consecutive visits.
    pub interval: SimDuration,
}

impl VisitSchedule {
    /// The paper's schedule: all 20 sites in a seeded random order,
    /// 60 s apart.
    pub fn paper_default(rng: &mut DetRng) -> VisitSchedule {
        Self::shuffled(20, SimDuration::from_secs(60), rng)
    }

    /// A shuffled schedule over sites `1..=n`.
    pub fn shuffled(n: u32, interval: SimDuration, rng: &mut DetRng) -> VisitSchedule {
        let mut order: Vec<u32> = (1..=n).collect();
        rng.shuffle(&mut order);
        VisitSchedule { order, interval }
    }

    /// A fixed (unshuffled) schedule, useful for single-site experiments.
    pub fn sequential(sites: Vec<u32>, interval: SimDuration) -> VisitSchedule {
        VisitSchedule {
            order: sites,
            interval,
        }
    }

    /// `(start_time, site_index)` pairs.
    pub fn visits(&self) -> impl Iterator<Item = (SimTime, u32)> + '_ {
        self.order
            .iter()
            .enumerate()
            .map(move |(i, &site)| (SimTime::ZERO + self.interval.saturating_mul(i as u64), site))
    }

    /// Total schedule span (last visit start + one interval).
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.interval.saturating_mul(self.order.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_covers_all_sites_once() {
        let mut rng = DetRng::new(11);
        let s = VisitSchedule::paper_default(&mut rng);
        let mut sorted = s.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=20).collect::<Vec<_>>());
        assert_eq!(s.interval, SimDuration::from_secs(60));
    }

    #[test]
    fn visits_are_evenly_spaced() {
        let s = VisitSchedule::sequential(vec![3, 1, 2], SimDuration::from_secs(60));
        let v: Vec<_> = s.visits().collect();
        assert_eq!(v[0], (SimTime::ZERO, 3));
        assert_eq!(v[1], (SimTime::from_secs(60), 1));
        assert_eq!(v[2], (SimTime::from_secs(120), 2));
        assert_eq!(s.horizon(), SimTime::from_secs(180));
    }

    #[test]
    fn same_seed_same_order() {
        let a = VisitSchedule::paper_default(&mut DetRng::new(9));
        let b = VisitSchedule::paper_default(&mut DetRng::new(9));
        assert_eq!(a.order, b.order);
        let c = VisitSchedule::paper_default(&mut DetRng::new(10));
        assert_ne!(a.order, c.order, "different seed reorders");
    }
}
