//! The paper's Table 1: characteristics of the 20 tested websites.
//!
//! These are the published per-site averages (total objects, bytes,
//! domains, and the text / JS+CSS / image mix) that parameterise page
//! synthesis. Site names are the paper's categories — the paper anonymises
//! the actual domains.

use serde::Serialize;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SiteSpec {
    /// 1-based site number as plotted in Figs. 3–5.
    pub index: u32,
    /// Category label from Table 1.
    pub category: &'static str,
    /// Average total objects (including the root page).
    pub total_objects: f64,
    /// Average page weight, kilobytes.
    pub avg_size_kb: f64,
    /// Average number of distinct domains.
    pub domains: f64,
    /// Average text (HTML/JSON/XML) objects.
    pub text_objects: f64,
    /// Average JavaScript + CSS objects.
    pub js_css_objects: f64,
    /// Average images + other objects.
    pub image_objects: f64,
}

/// Table 1, verbatim.
pub const TABLE1: [SiteSpec; 20] = [
    SiteSpec {
        index: 1,
        category: "Finance",
        total_objects: 134.8,
        avg_size_kb: 626.9,
        domains: 37.6,
        text_objects: 28.6,
        js_css_objects: 41.3,
        image_objects: 64.9,
    },
    SiteSpec {
        index: 2,
        category: "Entertainment",
        total_objects: 160.6,
        avg_size_kb: 2197.3,
        domains: 36.3,
        text_objects: 16.5,
        js_css_objects: 28.0,
        image_objects: 116.1,
    },
    SiteSpec {
        index: 3,
        category: "Shopping",
        total_objects: 143.8,
        avg_size_kb: 1563.1,
        domains: 15.8,
        text_objects: 13.3,
        js_css_objects: 36.8,
        image_objects: 93.7,
    },
    SiteSpec {
        index: 4,
        category: "Portal",
        total_objects: 121.6,
        avg_size_kb: 963.3,
        domains: 27.5,
        text_objects: 9.6,
        js_css_objects: 18.3,
        image_objects: 93.7,
    },
    SiteSpec {
        index: 5,
        category: "Technology",
        total_objects: 45.2,
        avg_size_kb: 602.8,
        domains: 3.0,
        text_objects: 2.0,
        js_css_objects: 18.0,
        image_objects: 25.2,
    },
    SiteSpec {
        index: 6,
        category: "ISP",
        total_objects: 163.4,
        avg_size_kb: 1594.5,
        domains: 13.2,
        text_objects: 13.2,
        js_css_objects: 36.4,
        image_objects: 113.8,
    },
    SiteSpec {
        index: 7,
        category: "News",
        total_objects: 115.8,
        avg_size_kb: 1130.6,
        domains: 28.5,
        text_objects: 9.1,
        js_css_objects: 49.5,
        image_objects: 57.2,
    },
    SiteSpec {
        index: 8,
        category: "News",
        total_objects: 157.7,
        avg_size_kb: 1184.5,
        domains: 27.3,
        text_objects: 29.6,
        js_css_objects: 28.3,
        image_objects: 99.8,
    },
    SiteSpec {
        index: 9,
        category: "Shopping",
        total_objects: 5.1,
        avg_size_kb: 56.2,
        domains: 2.0,
        text_objects: 3.1,
        js_css_objects: 2.0,
        image_objects: 0.0,
    },
    SiteSpec {
        index: 10,
        category: "Auction",
        total_objects: 59.3,
        avg_size_kb: 719.7,
        domains: 17.9,
        text_objects: 6.8,
        js_css_objects: 7.0,
        image_objects: 45.5,
    },
    SiteSpec {
        index: 11,
        category: "Online Radio",
        total_objects: 122.1,
        avg_size_kb: 1489.1,
        domains: 17.9,
        text_objects: 24.1,
        js_css_objects: 21.0,
        image_objects: 77.0,
    },
    SiteSpec {
        index: 12,
        category: "Photo Sharing",
        total_objects: 29.4,
        avg_size_kb: 688.0,
        domains: 4.0,
        text_objects: 2.3,
        js_css_objects: 10.0,
        image_objects: 17.1,
    },
    SiteSpec {
        index: 13,
        category: "Technology",
        total_objects: 63.4,
        avg_size_kb: 895.1,
        domains: 9.0,
        text_objects: 4.1,
        js_css_objects: 15.0,
        image_objects: 44.3,
    },
    SiteSpec {
        index: 14,
        category: "Baseball",
        total_objects: 167.8,
        avg_size_kb: 1130.5,
        domains: 12.5,
        text_objects: 19.5,
        js_css_objects: 94.0,
        image_objects: 54.3,
    },
    SiteSpec {
        index: 15,
        category: "News",
        total_objects: 323.0,
        avg_size_kb: 1722.7,
        domains: 84.7,
        text_objects: 73.4,
        js_css_objects: 73.6,
        image_objects: 176.0,
    },
    SiteSpec {
        index: 16,
        category: "Football",
        total_objects: 267.1,
        avg_size_kb: 2311.0,
        domains: 75.0,
        text_objects: 60.3,
        js_css_objects: 56.9,
        image_objects: 149.9,
    },
    SiteSpec {
        index: 17,
        category: "News",
        total_objects: 218.5,
        avg_size_kb: 4691.3,
        domains: 37.0,
        text_objects: 19.0,
        js_css_objects: 56.3,
        image_objects: 143.2,
    },
    SiteSpec {
        index: 18,
        category: "Photo Sharing",
        total_objects: 33.6,
        avg_size_kb: 1664.8,
        domains: 9.1,
        text_objects: 3.3,
        js_css_objects: 6.7,
        image_objects: 23.6,
    },
    SiteSpec {
        index: 19,
        category: "Online Radio",
        total_objects: 68.7,
        avg_size_kb: 2908.9,
        domains: 15.5,
        text_objects: 5.2,
        js_css_objects: 23.8,
        image_objects: 39.7,
    },
    SiteSpec {
        index: 20,
        category: "Weather",
        total_objects: 163.2,
        avg_size_kb: 1653.8,
        domains: 48.7,
        text_objects: 19.7,
        js_css_objects: 45.3,
        image_objects: 98.2,
    },
];

impl SiteSpec {
    /// Spec by 1-based site number.
    pub fn by_index(index: u32) -> Option<&'static SiteSpec> {
        TABLE1.get(index.checked_sub(1)? as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_sites_in_order() {
        assert_eq!(TABLE1.len(), 20);
        for (i, s) in TABLE1.iter().enumerate() {
            assert_eq!(s.index as usize, i + 1);
        }
    }

    #[test]
    fn object_mix_roughly_sums_to_total() {
        // Text + JS/CSS + images ≈ total objects per the table.
        for s in &TABLE1 {
            let mix = s.text_objects + s.js_css_objects + s.image_objects;
            assert!(
                (mix - s.total_objects).abs() <= s.total_objects * 0.15 + 2.0,
                "site {}: mix {} vs total {}",
                s.index,
                mix,
                s.total_objects
            );
        }
    }

    #[test]
    fn known_extremes_match_the_paper() {
        // Paper: 5 to 323 objects; 3 to 84 domains.
        let min_obj = TABLE1
            .iter()
            .map(|s| s.total_objects)
            .fold(f64::MAX, f64::min);
        let max_obj = TABLE1.iter().map(|s| s.total_objects).fold(0.0, f64::max);
        assert_eq!(min_obj, 5.1);
        assert_eq!(max_obj, 323.0);
        let max_dom = TABLE1.iter().map(|s| s.domains).fold(0.0, f64::max);
        assert_eq!(max_dom, 84.7);
    }

    #[test]
    fn lookup_by_index() {
        assert_eq!(SiteSpec::by_index(17).unwrap().avg_size_kb, 4691.3);
        assert!(SiteSpec::by_index(0).is_none());
        assert!(SiteSpec::by_index(21).is_none());
    }
}
