//! Page synthesis from Table 1 statistics.
//!
//! A [`SiteSpec`] gives counts and total weight; synthesis turns it into a
//! concrete [`WebPage`] with a multi-level discovery forest (the JS/CSS
//! interdependencies of §5.2), a realistic size distribution, and domain
//! placement. The same seed always yields the same page.

use crate::corpus::SiteSpec;
use crate::page::{ObjectId, ObjectKind, WebObject, WebPage};
use spdyier_sim::{DetRng, SimDuration};

/// Jitter `x` by ±`frac` multiplicatively.
fn jitter(rng: &mut DetRng, x: f64, frac: f64) -> f64 {
    x * rng.uniform_range(1.0 - frac, 1.0 + frac)
}

fn ext_for(kind: ObjectKind) -> &'static str {
    match kind {
        ObjectKind::Html => "html",
        ObjectKind::Script => "js",
        ObjectKind::Stylesheet => "css",
        ObjectKind::Image => "png",
        ObjectKind::Other => "json",
    }
}

/// Synthesize one page load for `spec`. Different seeds model the run-to-
/// run variation of a real site (rotating ads, A/B-tested assets).
pub fn synthesize(spec: &SiteSpec, rng: &mut DetRng) -> WebPage {
    // --- counts -------------------------------------------------------
    let n_text = jitter(rng, spec.text_objects.max(1.0), 0.1)
        .round()
        .max(1.0) as usize;
    let n_jscss = jitter(rng, spec.js_css_objects, 0.1).round().max(0.0) as usize;
    let n_img = jitter(rng, spec.image_objects, 0.1).round().max(0.0) as usize;

    // --- kinds (root first) --------------------------------------------
    let mut kinds = Vec::with_capacity(n_text + n_jscss + n_img);
    kinds.push(ObjectKind::Html);
    for _ in 1..n_text {
        // Extra text objects: some are evaluated HTML fragments, the rest
        // JSON/XML payloads.
        kinds.push(if rng.chance(0.3) {
            ObjectKind::Html
        } else {
            ObjectKind::Other
        });
    }
    for _ in 0..n_jscss {
        kinds.push(if rng.chance(0.6) {
            ObjectKind::Script
        } else {
            ObjectKind::Stylesheet
        });
    }
    for _ in 0..n_img {
        kinds.push(ObjectKind::Image);
    }
    let total = kinds.len();

    // --- discovery depths -----------------------------------------------
    // Root at depth 0. Non-root objects land in waves: most revealed by
    // the root's parse, the rest by downloaded-and-evaluated JS/CSS —
    // producing the stepped request pattern of Fig. 6.
    let mut depths = vec![0u8; total];
    for d in depths.iter_mut().skip(1) {
        let u = rng.uniform();
        *d = if u < 0.55 {
            1
        } else if u < 0.85 {
            2
        } else {
            3
        };
    }
    // Order objects by depth so parents always precede children. Keep the
    // (kind, depth) pairing by sorting indices.
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by_key(|&i| (depths[i], i));
    let kinds: Vec<ObjectKind> = order.iter().map(|&i| kinds[i]).collect();
    let depths: Vec<u8> = order.iter().map(|&i| depths[i]).collect();

    // --- parents ----------------------------------------------------------
    // Each object at depth d is revealed by an evaluated object at depth
    // < d (biased towards d-1); fall back to the root.
    let mut parents: Vec<Option<ObjectId>> = vec![None; total];
    let mut revealers_by_depth: Vec<Vec<u32>> = vec![vec![0]; 4];
    for i in 1..total {
        let d = depths[i] as usize;
        let pool: &Vec<u32> = revealers_by_depth
            .get(d - 1)
            .filter(|v| !v.is_empty())
            .unwrap_or(&revealers_by_depth[0]);
        let parent = *rng.choose(pool).expect("root always present");
        parents[i] = Some(ObjectId(parent));
        if kinds[i].is_evaluated() && d < 3 {
            revealers_by_depth[d].push(i as u32);
        }
    }

    // --- sizes -----------------------------------------------------------
    let budget = jitter(rng, spec.avg_size_kb * 1024.0, 0.08);
    let mut weights = Vec::with_capacity(total);
    for &k in &kinds {
        let w = match k {
            ObjectKind::Html => rng.lognormal_mean(4.0, 0.5),
            ObjectKind::Script => rng.lognormal_mean(2.0, 0.6),
            ObjectKind::Stylesheet => rng.lognormal_mean(1.5, 0.5),
            ObjectKind::Image => rng.lognormal_mean(1.0, 0.9),
            ObjectKind::Other => rng.lognormal_mean(0.3, 0.6),
        };
        weights.push(w.max(0.01));
    }
    let wsum: f64 = weights.iter().sum();
    let sizes: Vec<u64> = weights
        .iter()
        .map(|w| ((w / wsum) * budget).round().max(300.0) as u64)
        .collect();

    // --- domains ---------------------------------------------------------
    let n_dom = jitter(rng, spec.domains, 0.1).round().max(1.0) as usize;
    let primary = format!("site{}.example", spec.index);
    let mut domains = vec![primary.clone()];
    for k in 1..n_dom {
        if k % 2 == 0 {
            domains.push(format!("cdn{}.site{}.example", k, spec.index));
        } else {
            domains.push(format!("thirdparty{}-s{}.example", k, spec.index));
        }
    }

    // --- assemble ----------------------------------------------------------
    let mut objects = Vec::with_capacity(total);
    for i in 0..total {
        let kind = kinds[i];
        // The root lives on the primary domain; other objects land there
        // ~30% of the time, else on a random (CDN/third-party) domain.
        let domain = if i == 0 || rng.chance(0.3) {
            primary.clone()
        } else {
            rng.choose(&domains).expect("non-empty").clone()
        };
        let eval_time = match kind {
            ObjectKind::Html if i == 0 => {
                SimDuration::from_millis(rng.uniform_range(30.0, 80.0) as u64)
            }
            ObjectKind::Html => SimDuration::from_millis(rng.uniform_range(5.0, 25.0) as u64),
            ObjectKind::Script => {
                SimDuration::from_millis((5.0 + sizes[i] as f64 / 4000.0).min(40.0) as u64)
            }
            ObjectKind::Stylesheet => SimDuration::from_millis(rng.uniform_range(3.0, 15.0) as u64),
            _ => SimDuration::ZERO,
        };
        objects.push(WebObject {
            id: ObjectId(i as u32),
            domain,
            path: if i == 0 {
                "/".to_string()
            } else {
                format!("/o{}.{}", i, ext_for(kind))
            },
            size: sizes[i],
            kind,
            discovered_by: parents[i],
            eval_time,
        });
    }
    WebPage {
        name: format!("{}-{}", spec.index, spec.category),
        objects,
    }
}

/// The §5.2 synthetic pages: a root HTML plus `n` images with **no**
/// interdependencies. `same_domain = true` puts every image on the root's
/// domain; `false` gives each image its own domain.
pub fn test_page(n: usize, image_size: u64, same_domain: bool) -> WebPage {
    let mut objects = Vec::with_capacity(n + 1);
    objects.push(WebObject {
        id: ObjectId(0),
        domain: "testserver.example".into(),
        path: "/".into(),
        size: 20_000,
        kind: ObjectKind::Html,
        discovered_by: None,
        eval_time: SimDuration::from_millis(20),
    });
    for i in 1..=n {
        objects.push(WebObject {
            id: ObjectId(i as u32),
            domain: if same_domain {
                "testserver.example".into()
            } else {
                format!("img{}.testserver.example", i)
            },
            path: format!("/img{}.png", i),
            size: image_size,
            kind: ObjectKind::Image,
            discovered_by: Some(ObjectId(0)),
            eval_time: SimDuration::ZERO,
        });
    }
    WebPage {
        name: if same_domain {
            "testpage-same-domain".into()
        } else {
            "testpage-diff-domains".into()
        },
        objects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::TABLE1;

    #[test]
    fn all_table1_sites_synthesize_valid_pages() {
        let root = DetRng::new(42);
        for spec in &TABLE1 {
            let mut rng = root.fork_indexed("site", u64::from(spec.index));
            let page = synthesize(spec, &mut rng);
            page.validate()
                .unwrap_or_else(|e| panic!("site {}: {e}", spec.index));
        }
    }

    #[test]
    fn counts_track_the_spec() {
        let spec = &TABLE1[14]; // site 15: 323 objects, 84.7 domains
        let mut rng = DetRng::new(1);
        let page = synthesize(spec, &mut rng);
        let n = page.object_count() as f64;
        assert!(
            (n - spec.total_objects).abs() < spec.total_objects * 0.25,
            "{n}"
        );
        let d = page.domains().len() as f64;
        assert!((d - spec.domains).abs() < spec.domains * 0.5 + 2.0, "{d}");
    }

    #[test]
    fn sizes_track_the_spec() {
        for spec in &TABLE1 {
            let mut rng = DetRng::new(7);
            let page = synthesize(spec, &mut rng);
            let kb = page.total_bytes() as f64 / 1024.0;
            assert!(
                (kb - spec.avg_size_kb).abs() < spec.avg_size_kb * 0.25 + 50.0,
                "site {}: {kb} KB vs spec {}",
                spec.index,
                spec.avg_size_kb
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_page() {
        let spec = &TABLE1[0];
        let a = synthesize(spec, &mut DetRng::new(5));
        let b = synthesize(spec, &mut DetRng::new(5));
        assert_eq!(a.object_count(), b.object_count());
        for (x, y) in a.objects.iter().zip(&b.objects) {
            assert_eq!(x.size, y.size);
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.discovered_by, y.discovered_by);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = &TABLE1[0];
        let a = synthesize(spec, &mut DetRng::new(5));
        let b = synthesize(spec, &mut DetRng::new(6));
        let same = a
            .objects
            .iter()
            .zip(&b.objects)
            .filter(|(x, y)| x.size == y.size)
            .count();
        assert!(
            same < a.object_count().min(b.object_count()),
            "sizes vary across seeds"
        );
    }

    #[test]
    fn multi_level_discovery_exists() {
        // Real sites must have second-wave objects (the Fig. 6 steps).
        let spec = &TABLE1[6]; // News site with 49.5 JS/CSS
        let mut rng = DetRng::new(3);
        let page = synthesize(spec, &mut rng);
        let second_wave = page
            .objects
            .iter()
            .filter(|o| o.discovered_by.is_some() && o.discovered_by != Some(ObjectId(0)))
            .count();
        assert!(
            second_wave > 5,
            "expected deep discovery, got {second_wave}"
        );
    }

    #[test]
    fn test_page_same_domain_shape() {
        let p = test_page(50, 40_000, true);
        assert_eq!(p.object_count(), 51);
        assert_eq!(p.domains().len(), 1);
        assert_eq!(p.validate(), Ok(()));
        // No interdependencies: every image hangs off the root.
        assert!(p.objects[1..]
            .iter()
            .all(|o| o.discovered_by == Some(ObjectId(0))));
    }

    #[test]
    fn test_page_diff_domains_shape() {
        let p = test_page(50, 40_000, false);
        assert_eq!(p.domains().len(), 51);
        assert_eq!(p.validate(), Ok(()));
    }
}
