//! # spdyier-workload
//!
//! The study's workload: the paper's Table 1 site statistics ([`corpus`]),
//! seeded synthesis of concrete pages with JS/CSS discovery
//! interdependencies ([`synth`]), the §5.2 synthetic 50-object test pages,
//! and the 60-seconds-apart random visit schedule ([`schedule`]).
//!
//! ```
//! use spdyier_workload::{SiteSpec, synthesize};
//! use spdyier_sim::DetRng;
//!
//! let spec = SiteSpec::by_index(15).unwrap(); // the 323-object news site
//! let page = synthesize(spec, &mut DetRng::new(1));
//! assert!(page.object_count() > 200);
//! page.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod corpus;
pub mod page;
pub mod schedule;
pub mod synth;

pub use corpus::{SiteSpec, TABLE1};
pub use page::{ObjectId, ObjectKind, WebObject, WebPage};
pub use schedule::VisitSchedule;
pub use synth::{synthesize, test_page};
