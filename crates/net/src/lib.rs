//! # spdyier-net
//!
//! Packet-level link substrate for the SPDY'ier reproduction testbed.
//!
//! Links are fluid-approximation transmission lines with drop-tail queues,
//! random loss, and per-packet jitter ([`Link`]); a [`DuplexPath`] pairs one
//! per direction. The cellular crate wraps these with the RRC state machine;
//! the wired/WiFi environments of the paper are the presets in
//! [`path::presets`].
//!
//! ```
//! use spdyier_net::{Link, LinkConfig, LinkVerdict};
//! use spdyier_sim::{DetRng, SimTime};
//!
//! let mut link = Link::new(LinkConfig::from_mbps(8.0, 50));
//! let mut rng = DetRng::new(0);
//! match link.send(SimTime::ZERO, 1500, &mut rng) {
//!     LinkVerdict::Deliver(at) => assert!(at > SimTime::from_millis(50)),
//!     LinkVerdict::Drop => unreachable!("empty queue, lossless link"),
//! }
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod jitter;
pub mod link;
pub mod loss;
pub mod path;

pub use jitter::JitterModel;
pub use link::{Link, LinkConfig, LinkStats, LinkVerdict};
pub use loss::{LossModel, LossState};
pub use path::{presets, Direction, DuplexPath};

/// Ethernet-ish maximum segment size used on wired paths.
pub const WIRED_MSS: u64 = 1460;
/// Typical cellular maximum segment size (smaller MTU over GTP tunnels).
pub const CELLULAR_MSS: u64 = 1380;
/// Bytes of TCP/IP header overhead carried per segment on the wire.
pub const HEADER_OVERHEAD: u64 = 40;
