//! Packet-loss models.
//!
//! Cellular radio links hide most physical loss behind link-layer
//! retransmission, so the residual loss visible to TCP is small but bursty.
//! We provide independent (Bernoulli) loss and a two-state Gilbert–Elliott
//! model for correlated bursts.

use serde::{Deserialize, Serialize};
use spdyier_sim::DetRng;

/// A packet loss model evaluated per packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LossModel {
    /// No loss ever.
    #[default]
    None,
    /// Independent loss with the given probability per packet.
    Bernoulli {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott model: the channel alternates between a
    /// Good and a Bad state with geometric sojourn times.
    GilbertElliott {
        /// Probability of transitioning Good→Bad at each packet.
        p_good_to_bad: f64,
        /// Probability of transitioning Bad→Good at each packet.
        p_bad_to_good: f64,
        /// Drop probability while in the Good state.
        loss_good: f64,
        /// Drop probability while in the Bad state.
        loss_bad: f64,
    },
}

/// Mutable evaluation state for a [`LossModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LossState {
    in_bad: bool,
}

impl LossModel {
    /// Decide whether the next packet is dropped, advancing `state`.
    pub fn drops(&self, state: &mut LossState, rng: &mut DetRng) -> bool {
        match *self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
            } => {
                if state.in_bad {
                    if rng.chance(p_bad_to_good) {
                        state.in_bad = false;
                    }
                } else if rng.chance(p_good_to_bad) {
                    state.in_bad = true;
                }
                rng.chance(if state.in_bad { loss_bad } else { loss_good })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let mut rng = DetRng::new(1);
        let mut st = LossState::default();
        assert!((0..1000).all(|_| !LossModel::None.drops(&mut st, &mut rng)));
    }

    #[test]
    fn bernoulli_rate_close() {
        let mut rng = DetRng::new(2);
        let mut st = LossState::default();
        let m = LossModel::Bernoulli { p: 0.1 };
        let n = 100_000;
        let drops = (0..n).filter(|_| m.drops(&mut st, &mut rng)).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        let mut rng = DetRng::new(3);
        let mut st = LossState::default();
        let m = LossModel::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.2,
            loss_good: 0.0,
            loss_bad: 0.8,
        };
        let seq: Vec<bool> = (0..200_000).map(|_| m.drops(&mut st, &mut rng)).collect();
        let total = seq.iter().filter(|&&d| d).count();
        assert!(total > 0, "some loss must occur");
        // Burstiness: probability a drop follows a drop must exceed the
        // marginal drop rate by a wide margin.
        let pairs = seq.windows(2).filter(|w| w[0]).count();
        let follow = seq.windows(2).filter(|w| w[0] && w[1]).count();
        let p_follow = follow as f64 / pairs as f64;
        let p_marginal = total as f64 / seq.len() as f64;
        assert!(
            p_follow > 3.0 * p_marginal,
            "correlated loss expected: follow {p_follow} vs marginal {p_marginal}"
        );
    }

    #[test]
    fn gilbert_all_good_no_bad_loss() {
        let mut rng = DetRng::new(4);
        let mut st = LossState::default();
        let m = LossModel::GilbertElliott {
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        assert!((0..1000).all(|_| !m.drops(&mut st, &mut rng)));
    }
}
