//! The unidirectional link model.
//!
//! A [`Link`] is a fluid-approximation transmission line: packets serialise
//! one after another at the line rate (tracked by `busy_until`), then
//! propagate with a fixed one-way delay plus per-packet jitter. A drop-tail
//! queue bounds how much backlog may sit in front of the serialiser — the
//! buffer at a 3G NodeB or a broadband modem.

use crate::jitter::JitterModel;
use crate::loss::{LossModel, LossState};
use serde::{Deserialize, Serialize};
use spdyier_sim::{DetRng, SimDuration, SimTime};

/// Configuration of one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Line rate in bytes per second.
    pub rate_bytes_per_sec: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Maximum backlog (bytes queued ahead of the serialiser) before
    /// drop-tail kicks in.
    pub queue_limit_bytes: u64,
    /// Random loss model applied after queueing.
    pub loss: LossModel,
    /// Per-packet delay variation added to the propagation delay.
    pub jitter: JitterModel,
}

impl LinkConfig {
    /// A link from a rate in megabits/s and a delay in milliseconds, with a
    /// bandwidth-delay-product-proportional queue (min 64 KiB).
    pub fn from_mbps(mbps: f64, one_way_ms: u64) -> LinkConfig {
        let rate = (mbps * 1e6 / 8.0) as u64;
        let bdp = (rate as f64 * (2.0 * one_way_ms as f64 / 1e3)) as u64;
        LinkConfig {
            rate_bytes_per_sec: rate.max(1),
            propagation: SimDuration::from_millis(one_way_ms),
            queue_limit_bytes: bdp.max(64 * 1024),
            loss: LossModel::None,
            jitter: JitterModel::None,
        }
    }

    /// Override the loss model (builder style).
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Override the jitter model (builder style).
    pub fn with_jitter(mut self, jitter: JitterModel) -> Self {
        self.jitter = jitter;
        self
    }

    /// Override the queue limit (builder style).
    pub fn with_queue_limit(mut self, bytes: u64) -> Self {
        self.queue_limit_bytes = bytes;
        self
    }
}

/// Counters a link accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LinkStats {
    /// Packets accepted and delivered.
    pub delivered_packets: u64,
    /// Bytes accepted and delivered.
    pub delivered_bytes: u64,
    /// Packets dropped by the drop-tail queue.
    pub queue_drops: u64,
    /// Packets dropped by the random loss model.
    pub loss_drops: u64,
}

/// The verdict for one packet offered to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// The packet will arrive at the far end at this instant.
    Deliver(SimTime),
    /// The packet was dropped (queue overflow or random loss).
    Drop,
}

/// One direction of a point-to-point link.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    busy_until: SimTime,
    loss_state: LossState,
    stats: LinkStats,
    /// Arrival time of the most recently accepted packet. A link is one
    /// serialised bearer: delivery is FIFO even under per-packet jitter
    /// (3G/LTE RLC delivers TCP in order; reordering would fabricate
    /// duplicate-ACK storms the real network never produces).
    last_arrival: SimTime,
}

impl Link {
    /// Create a link in the idle state.
    pub fn new(config: LinkConfig) -> Link {
        Link {
            config,
            busy_until: SimTime::ZERO,
            loss_state: LossState::default(),
            stats: LinkStats::default(),
            last_arrival: SimTime::ZERO,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Replace the configuration (rate changes apply to packets offered
    /// from now on; in-flight packets keep their computed arrival times).
    pub fn set_config(&mut self, config: LinkConfig) {
        self.config = config;
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Time the serialiser frees up; before this instant new packets queue.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Bytes of backlog at `now` (0 when the serialiser is idle).
    pub fn backlog_bytes(&self, now: SimTime) -> u64 {
        let backlog_time = self.busy_until.saturating_since(now);
        (backlog_time.as_secs_f64() * self.config.rate_bytes_per_sec as f64) as u64
    }

    /// Time to serialise `bytes` at the line rate.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.config.rate_bytes_per_sec as f64)
    }

    /// Offer a packet of `bytes` to the link at `now`.
    ///
    /// Computes drop-tail admission against the current backlog, then the
    /// serialisation finish time, then adds propagation and jitter.
    pub fn send(&mut self, now: SimTime, bytes: u64, rng: &mut DetRng) -> LinkVerdict {
        if self.backlog_bytes(now) + bytes > self.config.queue_limit_bytes {
            self.stats.queue_drops += 1;
            return LinkVerdict::Drop;
        }
        if self.config.loss.drops(&mut self.loss_state, rng) {
            self.stats.loss_drops += 1;
            return LinkVerdict::Drop;
        }
        let start = self.busy_until.max(now);
        let finish = start + self.serialization_time(bytes);
        self.busy_until = finish;
        let arrival = finish + self.config.propagation + self.config.jitter.sample(rng);
        // FIFO: jitter delays but never reorders within the bearer.
        let arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        self.stats.delivered_packets += 1;
        self.stats.delivered_bytes += bytes;
        LinkVerdict::Deliver(arrival)
    }

    /// Reset transient state (serialiser and loss state), keeping counters.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.loss_state = LossState::default();
        self.last_arrival = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(mbps: f64, delay_ms: u64) -> (Link, DetRng) {
        (
            Link::new(LinkConfig::from_mbps(mbps, delay_ms)),
            DetRng::new(7),
        )
    }

    #[test]
    fn single_packet_latency_is_serialization_plus_propagation() {
        // 8 Mbps = 1e6 bytes/s; a 1000-byte packet serialises in 1 ms.
        let (mut link, mut rng) = mk(8.0, 50);
        match link.send(SimTime::ZERO, 1000, &mut rng) {
            LinkVerdict::Deliver(at) => {
                assert_eq!(at, SimTime::from_millis(51));
            }
            LinkVerdict::Drop => panic!("unexpected drop"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let (mut link, mut rng) = mk(8.0, 0);
        let a = link.send(SimTime::ZERO, 1000, &mut rng);
        let b = link.send(SimTime::ZERO, 1000, &mut rng);
        assert_eq!(a, LinkVerdict::Deliver(SimTime::from_millis(1)));
        assert_eq!(b, LinkVerdict::Deliver(SimTime::from_millis(2)));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let (mut link, mut rng) = mk(8.0, 0);
        link.send(SimTime::ZERO, 1000, &mut rng);
        // Send the next packet long after the first drained.
        let b = link.send(SimTime::from_secs(1), 1000, &mut rng);
        assert_eq!(b, LinkVerdict::Deliver(SimTime::from_micros(1_001_000)));
    }

    #[test]
    fn drop_tail_when_backlog_exceeds_limit() {
        let cfg = LinkConfig::from_mbps(8.0, 0).with_queue_limit(2500);
        let mut link = Link::new(cfg);
        let mut rng = DetRng::new(1);
        assert!(matches!(
            link.send(SimTime::ZERO, 1000, &mut rng),
            LinkVerdict::Deliver(_)
        ));
        assert!(matches!(
            link.send(SimTime::ZERO, 1000, &mut rng),
            LinkVerdict::Deliver(_)
        ));
        // Third packet would make the backlog 3000 > 2500.
        assert_eq!(link.send(SimTime::ZERO, 1000, &mut rng), LinkVerdict::Drop);
        assert_eq!(link.stats().queue_drops, 1);
        assert_eq!(link.stats().delivered_packets, 2);
    }

    #[test]
    fn backlog_drains_over_time() {
        let (mut link, mut rng) = mk(8.0, 0);
        link.send(SimTime::ZERO, 10_000, &mut rng); // 10 ms of backlog
        assert!(link.backlog_bytes(SimTime::ZERO) >= 9_999);
        assert_eq!(link.backlog_bytes(SimTime::from_millis(5)), 5_000);
        assert_eq!(link.backlog_bytes(SimTime::from_millis(10)), 0);
    }

    #[test]
    fn loss_model_drops_are_counted() {
        let cfg = LinkConfig::from_mbps(8.0, 0).with_loss(LossModel::Bernoulli { p: 1.0 });
        let mut link = Link::new(cfg);
        let mut rng = DetRng::new(1);
        assert_eq!(link.send(SimTime::ZERO, 100, &mut rng), LinkVerdict::Drop);
        assert_eq!(link.stats().loss_drops, 1);
        assert_eq!(link.stats().delivered_bytes, 0);
    }

    #[test]
    fn reset_clears_serializer() {
        let (mut link, mut rng) = mk(8.0, 0);
        link.send(SimTime::ZERO, 50_000, &mut rng);
        assert!(link.busy_until() > SimTime::ZERO);
        link.reset();
        assert_eq!(link.busy_until(), SimTime::ZERO);
        assert_eq!(link.stats().delivered_packets, 1, "counters survive reset");
    }

    #[test]
    fn from_mbps_sane() {
        let cfg = LinkConfig::from_mbps(15.0, 20);
        assert_eq!(cfg.rate_bytes_per_sec, 1_875_000);
        assert_eq!(cfg.propagation, SimDuration::from_millis(20));
        assert!(cfg.queue_limit_bytes >= 64 * 1024);
    }
}
