//! Per-packet delay-variation (jitter) models.
//!
//! Cellular schedulers add substantial delay variance on top of the base
//! round trip; this is what keeps TCP's RTT variance estimate — and hence
//! the RTO — realistic. A log-normal model fits measured cellular one-way
//! delay tails well.

use serde::{Deserialize, Serialize};
use spdyier_sim::{DetRng, SimDuration};

/// A jitter model producing a non-negative additional delay per packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum JitterModel {
    /// No added delay.
    #[default]
    None,
    /// Uniform extra delay in `[0, max)`.
    Uniform {
        /// Upper bound of the added delay.
        max: SimDurationMillis,
    },
    /// Log-normal extra delay with the given mean and shape.
    LogNormal {
        /// Mean added delay, milliseconds.
        mean_ms: f64,
        /// Sigma of the underlying normal (tail heaviness).
        sigma: f64,
    },
}

/// Milliseconds wrapper so jitter configs serialise readably.
pub type SimDurationMillis = u64;

impl JitterModel {
    /// Draw the added delay for one packet.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            JitterModel::None => SimDuration::ZERO,
            JitterModel::Uniform { max } => {
                SimDuration::from_secs_f64(rng.uniform_range(0.0, max as f64 / 1e3))
            }
            JitterModel::LogNormal { mean_ms, sigma } => {
                SimDuration::from_secs_f64(rng.lognormal_mean(mean_ms, sigma) / 1e3)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero() {
        let mut rng = DetRng::new(1);
        assert_eq!(JitterModel::None.sample(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn uniform_within_bound() {
        let mut rng = DetRng::new(2);
        let m = JitterModel::Uniform { max: 50 };
        for _ in 0..10_000 {
            let d = m.sample(&mut rng);
            assert!(d < SimDuration::from_millis(50));
        }
    }

    #[test]
    fn lognormal_mean_close() {
        let mut rng = DetRng::new(3);
        let m = JitterModel::LogNormal {
            mean_ms: 20.0,
            sigma: 0.5,
        };
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| m.sample(&mut rng).as_secs_f64() * 1e3).sum();
        let mean = sum / n as f64;
        assert!((mean - 20.0).abs() < 1.0, "mean {mean} ms");
    }

    #[test]
    fn lognormal_is_nonnegative_and_tailed() {
        let mut rng = DetRng::new(4);
        let m = JitterModel::LogNormal {
            mean_ms: 10.0,
            sigma: 0.8,
        };
        let samples: Vec<f64> = (0..20_000)
            .map(|_| m.sample(&mut rng).as_secs_f64() * 1e3)
            .collect();
        assert!(samples.iter().all(|&s| s >= 0.0));
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 30.0, "heavy tail expected, max {max}");
    }
}
