//! Duplex paths and the network presets used by the study.

use crate::jitter::JitterModel;
use crate::link::{Link, LinkConfig, LinkVerdict};
use crate::loss::LossModel;
use serde::{Deserialize, Serialize};
use spdyier_sim::{DetRng, SimDuration, SimTime};

/// Direction of travel on a duplex path, named from the client's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards the client (downlink).
    Down,
    /// Away from the client (uplink).
    Up,
}

/// A duplex path: an independent [`Link`] per direction.
#[derive(Debug)]
pub struct DuplexPath {
    down: Link,
    up: Link,
}

impl DuplexPath {
    /// Build from per-direction configurations.
    pub fn new(down: LinkConfig, up: LinkConfig) -> DuplexPath {
        DuplexPath {
            down: Link::new(down),
            up: Link::new(up),
        }
    }

    /// Symmetric path.
    pub fn symmetric(cfg: LinkConfig) -> DuplexPath {
        DuplexPath::new(cfg, cfg)
    }

    /// Offer a packet in the given direction.
    pub fn send(
        &mut self,
        dir: Direction,
        now: SimTime,
        bytes: u64,
        rng: &mut DetRng,
    ) -> LinkVerdict {
        self.link_mut(dir).send(now, bytes, rng)
    }

    /// Access one direction's link.
    pub fn link(&self, dir: Direction) -> &Link {
        match dir {
            Direction::Down => &self.down,
            Direction::Up => &self.up,
        }
    }

    /// Mutable access to one direction's link.
    pub fn link_mut(&mut self, dir: Direction) -> &mut Link {
        match dir {
            Direction::Down => &mut self.down,
            Direction::Up => &mut self.up,
        }
    }

    /// Base (no-queue, no-jitter) round-trip time of the path.
    pub fn base_rtt(&self) -> SimDuration {
        self.down.config().propagation + self.up.config().propagation
    }
}

/// Network presets matching the environments in the paper.
pub mod presets {
    use super::*;

    /// The residential 802.11g/broadband path from the paper's §4.0.1:
    /// 15 Mbps down / 2 Mbps up with a ~20 ms one-way delay to the proxy
    /// and mild jitter.
    pub fn broadband_wifi() -> DuplexPath {
        // Home-router buffering: ~512 KiB downstream (the era's modest
        // bufferbloat), enough that parallel slow starts queue rather
        // than drop en masse.
        DuplexPath::new(
            LinkConfig::from_mbps(15.0, 20)
                .with_queue_limit(512 * 1024)
                .with_jitter(JitterModel::LogNormal {
                    mean_ms: 2.0,
                    sigma: 0.4,
                }),
            LinkConfig::from_mbps(2.0, 20)
                .with_queue_limit(128 * 1024)
                .with_jitter(JitterModel::LogNormal {
                    mean_ms: 2.0,
                    sigma: 0.4,
                }),
        )
    }

    /// The proxy↔origin path inside/near the cloud datacenter. §5.3 measures
    /// first-byte times of ~14 ms average, so the wire itself is fast and
    /// the latency lives in the origin model.
    pub fn cloud_wired(one_way_ms: u64) -> DuplexPath {
        DuplexPath::symmetric(
            LinkConfig::from_mbps(1000.0, one_way_ms).with_queue_limit(16 * 1024 * 1024),
        )
    }

    /// A lossy variant of the WiFi path for fault-injection tests.
    pub fn lossy_wifi(p: f64) -> DuplexPath {
        DuplexPath::new(
            LinkConfig::from_mbps(15.0, 20).with_loss(LossModel::Bernoulli { p }),
            LinkConfig::from_mbps(2.0, 20).with_loss(LossModel::Bernoulli { p }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_are_independent() {
        let mut p = DuplexPath::new(
            LinkConfig::from_mbps(8.0, 10),
            LinkConfig::from_mbps(1.0, 10),
        );
        let mut rng = DetRng::new(1);
        // Saturate the downlink; uplink serialiser must stay idle.
        p.send(Direction::Down, SimTime::ZERO, 50_000, &mut rng);
        assert!(p.link(Direction::Down).busy_until() > SimTime::ZERO);
        assert_eq!(p.link(Direction::Up).busy_until(), SimTime::ZERO);
    }

    #[test]
    fn base_rtt_sums_propagation() {
        let p = DuplexPath::symmetric(LinkConfig::from_mbps(10.0, 25));
        assert_eq!(p.base_rtt(), SimDuration::from_millis(50));
    }

    #[test]
    fn wifi_preset_is_asymmetric() {
        let p = presets::broadband_wifi();
        assert!(
            p.link(Direction::Down).config().rate_bytes_per_sec
                > p.link(Direction::Up).config().rate_bytes_per_sec
        );
        assert_eq!(p.base_rtt(), SimDuration::from_millis(40));
    }

    #[test]
    fn lossy_preset_drops_sometimes() {
        let mut p = presets::lossy_wifi(0.5);
        let mut rng = DetRng::new(2);
        let drops = (0..200)
            .filter(|_| {
                matches!(
                    p.send(Direction::Down, SimTime::from_secs(1000), 100, &mut rng),
                    LinkVerdict::Drop
                )
            })
            .count();
        assert!(drops > 50 && drops < 150, "drops {drops}");
    }
}
