//! End-to-end tests of the manifest runner: exit codes, the result.json
//! contract, and byte-identity between the legacy paired sweep and its
//! manifest re-expression.

use spdyier_core::ScenarioExit;
use spdyier_experiments::scenario_run::{
    execute_folded_on, execute_on, finish, finish_folded, paired_dump_string, run_manifest_on,
};
use spdyier_experiments::{paired_runs_on, Executor, ExpOpts};
use spdyier_scenario::{Manifest, Seeds};
use std::path::PathBuf;

fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spdyier_scenario_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A sub-second wifi synthetic-page manifest the tests mutate.
fn quick_manifest(name: &str) -> Manifest {
    Manifest::from_json(&format!(
        r#"{{
            "schema_version": 1,
            "name": "{name}",
            "network": {{ "kind": "wifi" }},
            "workload": {{
                "kind": "synthetic",
                "objects": 10,
                "object_bytes": 2000,
                "same_domain": true,
                "visits": 1,
                "interval_s": 30
            }},
            "protocols": ["http", "spdy"]
        }}"#
    ))
    .expect("quick manifest decodes")
}

#[test]
fn failing_assertion_yields_exit_1_and_failed_verdict() {
    let mut m = quick_manifest("must_fail");
    m.assertions =
        vec![spdyier_scenario::Assertion::parse("plt_p50_ms < 1").expect("assertion parses")];
    let dir = out_dir("fail");
    let outcome = run_manifest_on(&Executor::new(2), &m, &dir).expect("runner writes");
    assert_eq!(outcome.exit, ScenarioExit::AssertionFailed);
    assert_eq!(outcome.exit.code(), 1);

    let result = std::fs::read_to_string(dir.join("result.json")).expect("result.json exists");
    let v = serde_json::from_str(&result).expect("result.json parses");
    assert_eq!(v["status"], serde_json::Value::Str("fail".into()));
    assert_eq!(v["exit_code"], serde_json::Value::U64(1));
    assert_eq!(
        v["assertions"][0]["status"],
        serde_json::Value::Str("fail".into())
    );
    let junit = std::fs::read_to_string(dir.join("junit.xml")).expect("junit.xml exists");
    assert!(junit.contains("failures=\"1\""), "{junit}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn result_json_top_level_keys_are_pinned() {
    let m = quick_manifest("keyset");
    let dir = out_dir("keys");
    run_manifest_on(&Executor::new(2), &m, &dir).expect("runner writes");
    let result = std::fs::read_to_string(dir.join("result.json")).expect("result.json exists");
    let serde_json::Value::Object(entries) = serde_json::from_str(&result).expect("parses") else {
        panic!("result.json is an object");
    };
    let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "schema_version",
            "scenario",
            "description",
            "network",
            "seeds",
            "status",
            "exit_code",
            "cells",
            "assertions",
            "artifacts",
        ]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_event_budget_yields_exit_2_and_limit_status() {
    let mut m = quick_manifest("limited");
    m.limits.event_budget = 50;
    let dir = out_dir("limit");
    let outcome = run_manifest_on(&Executor::new(2), &m, &dir).expect("runner writes");
    assert_eq!(outcome.exit, ScenarioExit::LimitExceeded);
    assert_eq!(outcome.exit.code(), 2);
    let result = std::fs::read_to_string(dir.join("result.json")).expect("result.json exists");
    let v = serde_json::from_str(&result).expect("parses");
    assert_eq!(v["status"], serde_json::Value::Str("limit".into()));
    assert!(
        matches!(&v["limit"], serde_json::Value::Str(s) if s.contains("event budget")),
        "{result}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn paired_manifest_matches_legacy_paired_sweep_bytes() {
    // The legacy dump, exactly as `experiments paired wifi` built it.
    let exec = Executor::new(2);
    let pairs = paired_runs_on(
        &exec,
        spdyier_core::NetworkKind::Wifi,
        ExpOpts::quick(),
        true,
    );
    let mut legacy = String::new();
    for (http, spdy) in &pairs {
        legacy.push_str(&serde_json::to_string(http).expect("serialize http run"));
        legacy.push('\n');
        legacy.push_str(&serde_json::to_string(spdy).expect("serialize spdy run"));
        legacy.push('\n');
    }

    // The same sweep through the manifest path.
    let mut m = Manifest::paper_baseline("paired_wifi");
    m.network.kind = spdyier_core::NetworkKind::Wifi;
    m.seeds = Seeds { base: 0, count: 1 };
    m.tcp_traces = true;
    m.outputs.paired_dump = true;
    let run = execute_on(&exec, &m);
    assert!(run.limit_error.is_none());
    assert_eq!(paired_dump_string(&run), legacy);
}

#[test]
fn committed_scenario_pack_decodes() {
    let pack = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(&pack).expect("scenarios/ exists") {
        let path = entry.expect("read entry").path();
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        if !matches!(ext, "json" | "yaml" | "yml") {
            continue;
        }
        let m = Manifest::from_file(&path)
            .unwrap_or_else(|e| panic!("{} fails to decode: {e}", path.display()));
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 stem");
        assert_eq!(
            m.name,
            stem,
            "{}: manifest name must match file stem",
            path.display()
        );
        assert!(!m.cells().is_empty());
        seen += 1;
    }
    assert!(
        seen >= 6,
        "expected the starter pack, found {seen} manifests"
    );
}

#[test]
fn folded_path_writes_byte_identical_artifacts_to_collect_path() {
    // The heaviest artifact surface the runner has: paired dump on,
    // full traces on, both protocols. Collect-then-finish and
    // fold-as-you-go must produce the same bytes in every file.
    let mut m = quick_manifest("fold_equiv");
    m.trace = spdyier_core::TraceLevel::Full;
    m.outputs.paired_dump = true;
    m.outputs.trace_artifacts = true;
    m.tcp_traces = true;

    let collect_dir = out_dir("fold_equiv_collect");
    let run = execute_on(&Executor::new(2), &m);
    let collected = finish(&m, &run, &collect_dir).expect("collect path writes");

    let fold_dir = out_dir("fold_equiv_folded");
    let folded_run = execute_folded_on(&Executor::new(2), &m);
    let folded = finish_folded(&m, &folded_run, &fold_dir).expect("fold path writes");

    assert_eq!(collected.exit, folded.exit);
    assert_eq!(collected.summary, folded.summary);
    let names = |written: &[PathBuf]| -> Vec<String> {
        written
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect()
    };
    assert_eq!(names(&collected.written), names(&folded.written));
    assert!(
        collected.written.len() >= 10,
        "expected the full two-cell trace bundle, got {:?}",
        collected.written
    );
    for (a, b) in collected.written.iter().zip(&folded.written) {
        let left = std::fs::read(a).expect("collect artifact readable");
        let right = std::fs::read(b).expect("folded artifact readable");
        assert_eq!(
            left,
            right,
            "artifact {} differs between collect and fold paths",
            a.file_name().unwrap().to_str().unwrap()
        );
    }
    let _ = std::fs::remove_dir_all(&collect_dir);
    let _ = std::fs::remove_dir_all(&fold_dir);
}

#[test]
fn skipped_network_clause_is_reported_not_failed() {
    let mut m = quick_manifest("skipper");
    m.assertions =
        vec![spdyier_scenario::Assertion::parse("plt_p50_ms < 60000 on lte").expect("parses")];
    let dir = out_dir("skip");
    let outcome = run_manifest_on(&Executor::new(2), &m, &dir).expect("runner writes");
    assert_eq!(outcome.exit, ScenarioExit::Pass);
    assert_eq!(outcome.verdicts.len(), 1);
    assert_eq!(
        outcome.verdicts[0].status,
        spdyier_core::VerdictStatus::Skipped
    );
    let junit = std::fs::read_to_string(dir.join("junit.xml")).expect("junit.xml exists");
    assert!(junit.contains("skipped"), "{junit}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_manifest_writes_the_legacy_artifact_set_plus_contract() {
    let mut m = quick_manifest("traced");
    m.protocols = vec![spdyier_scenario::ProtocolSpec::parse("spdy").expect("parses")];
    m.trace = spdyier_core::TraceLevel::Full;
    m.outputs.trace_artifacts = true;
    let dir = out_dir("trace");
    let run = execute_on(&Executor::new(1), &m);
    let outcome = finish(&m, &run, &dir).expect("runner writes");
    assert_eq!(outcome.exit, ScenarioExit::Pass);
    for name in [
        "result.json",
        "junit.xml",
        "trace_spdy.jsonl",
        "waterfall_spdy.har.json",
        "stalls_spdy.dat",
        "stalls_spdy.manifest.json",
        "metrics_spdy.json",
    ] {
        assert!(dir.join(name).is_file(), "missing artifact {name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
