//! Parallel sweeps must be indistinguishable from serial ones: the
//! executor only reorders *when* runs execute, never what they compute
//! or where their outputs land.

use spdyier_core::{NetworkKind, TraceLevel};
use spdyier_experiments::{paired_runs_on, paired_runs_traced_on, Executor, ExpOpts};

/// A paired 3G sweep run serially and on a 4-worker pool serializes to
/// byte-identical JSON, pair by pair.
#[test]
fn parallel_paired_3g_sweep_is_byte_identical_to_serial() {
    let opts = ExpOpts { seeds: 1 };
    let serial = paired_runs_on(&Executor::new(1), NetworkKind::Umts3G, opts, false);
    let parallel = paired_runs_on(&Executor::new(4), NetworkKind::Umts3G, opts, false);
    assert_eq!(serial.len(), parallel.len());
    for (i, ((sh, ss), (ph, ps))) in serial.iter().zip(parallel.iter()).enumerate() {
        let sh = serde_json::to_string(sh).expect("serialize serial HTTP run");
        let ph = serde_json::to_string(ph).expect("serialize parallel HTTP run");
        assert_eq!(sh, ph, "HTTP run for seed {i} diverged under parallelism");
        let ss = serde_json::to_string(ss).expect("serialize serial SPDY run");
        let ps = serde_json::to_string(ps).expect("serialize parallel SPDY run");
        assert_eq!(ss, ps, "SPDY run for seed {i} diverged under parallelism");
    }
    // The sweep actually measured something.
    assert!(serial
        .iter()
        .all(|(h, s)| !h.visits.is_empty() && !s.visits.is_empty()));
}

/// The flight recorder inherits the same guarantee: the JSONL trace
/// stream of a traced paired sweep is byte-identical whether the sweep
/// ran on one worker (`SPDYIER_JOBS=1`) or four.
#[test]
fn parallel_traced_sweep_has_byte_identical_jsonl() {
    let opts = ExpOpts { seeds: 1 };
    let level = TraceLevel::Transport;
    let serial = paired_runs_traced_on(&Executor::new(1), NetworkKind::Umts3G, opts, level);
    let parallel = paired_runs_traced_on(&Executor::new(4), NetworkKind::Umts3G, opts, level);
    assert_eq!(serial.len(), parallel.len());
    for (i, (((_, sh), (_, ss)), ((_, ph), (_, ps)))) in
        serial.iter().zip(parallel.iter()).enumerate()
    {
        assert!(sh.emitted > 0 && ss.emitted > 0, "seed {i} traced nothing");
        assert_eq!(
            sh.to_jsonl(),
            ph.to_jsonl(),
            "HTTP trace for seed {i} diverged under parallelism"
        );
        assert_eq!(
            ss.to_jsonl(),
            ps.to_jsonl(),
            "SPDY trace for seed {i} diverged under parallelism"
        );
    }
}
