//! Parallel sweeps must be indistinguishable from serial ones: the
//! executor only reorders *when* runs execute, never what they compute
//! or where their outputs land.

use spdyier_core::NetworkKind;
use spdyier_experiments::{paired_runs_on, Executor, ExpOpts};

/// A paired 3G sweep run serially and on a 4-worker pool serializes to
/// byte-identical JSON, pair by pair.
#[test]
fn parallel_paired_3g_sweep_is_byte_identical_to_serial() {
    let opts = ExpOpts { seeds: 1 };
    let serial = paired_runs_on(&Executor::new(1), NetworkKind::Umts3G, opts, false);
    let parallel = paired_runs_on(&Executor::new(4), NetworkKind::Umts3G, opts, false);
    assert_eq!(serial.len(), parallel.len());
    for (i, ((sh, ss), (ph, ps))) in serial.iter().zip(parallel.iter()).enumerate() {
        let sh = serde_json::to_string(sh).expect("serialize serial HTTP run");
        let ph = serde_json::to_string(ph).expect("serialize parallel HTTP run");
        assert_eq!(sh, ph, "HTTP run for seed {i} diverged under parallelism");
        let ss = serde_json::to_string(ss).expect("serialize serial SPDY run");
        let ps = serde_json::to_string(ps).expect("serialize parallel SPDY run");
        assert_eq!(ss, ps, "SPDY run for seed {i} diverged under parallelism");
    }
    // The sweep actually measured something.
    assert!(serial
        .iter()
        .all(|(h, s)| !h.visits.is_empty() && !s.visits.is_empty()));
}
