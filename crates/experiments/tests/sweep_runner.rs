//! End-to-end tests of the resumable sweep runner: the checkpoint
//! store, interruption + resume, and the determinism contract — serial,
//! wide-pool, and resumed-after-interruption sweeps must produce
//! byte-identical `result.json`.

use spdyier_experiments::sweep::{
    run_sweep_on, SweepOptions, SWEEP_HEARTBEAT_NAME, SWEEP_STORE_NAME,
};
use spdyier_experiments::{Executor, SweepOutcome};
use spdyier_scenario::{Manifest, Seeds};
use std::path::PathBuf;

fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spdyier_sweep_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A sub-second synthetic sweep with enough cells (2 protocols × 3
/// seeds = 6) to interrupt in the middle.
fn sweep_manifest(name: &str) -> Manifest {
    let mut m = Manifest::from_json(&format!(
        r#"{{
            "schema_version": 1,
            "name": "{name}",
            "network": {{ "kind": "wifi" }},
            "workload": {{
                "kind": "synthetic",
                "objects": 8,
                "object_bytes": 1500,
                "same_domain": true,
                "visits": 1,
                "interval_s": 30
            }},
            "protocols": ["http", "spdy"],
            "assertions": ["plt_p50_ms < 60000", "completion_rate >= 1.0"]
        }}"#
    ))
    .expect("sweep manifest decodes");
    m.seeds = Seeds { base: 0, count: 3 };
    m
}

fn completed(outcome: SweepOutcome) -> spdyier_experiments::ScenarioOutcome {
    match outcome {
        SweepOutcome::Completed(o) => *o,
        SweepOutcome::Interrupted {
            checkpointed,
            total,
        } => {
            panic!("expected completion, interrupted at {checkpointed}/{total}")
        }
    }
}

#[test]
fn serial_wide_and_resumed_sweeps_write_byte_identical_results() {
    let m = sweep_manifest("sweep_det");

    // Serial, uninterrupted.
    let serial_dir = out_dir("serial");
    let serial = completed(
        run_sweep_on(&Executor::new(1), &m, &serial_dir, SweepOptions::default())
            .expect("serial sweep runs"),
    );
    assert_eq!(serial.exit.code(), 0, "{}", serial.summary);

    // Four workers, uninterrupted — the SPDYIER_JOBS=4 shape.
    let wide_dir = out_dir("wide");
    completed(
        run_sweep_on(&Executor::new(4), &m, &wide_dir, SweepOptions::default())
            .expect("wide sweep runs"),
    );

    // Interrupted after 2 cells, then resumed on a different pool width.
    let resumed_dir = out_dir("resumed");
    let first = run_sweep_on(
        &Executor::new(1),
        &m,
        &resumed_dir,
        SweepOptions {
            stop_after: Some(2),
        },
    )
    .expect("interrupted sweep runs");
    let SweepOutcome::Interrupted {
        checkpointed,
        total,
    } = first
    else {
        panic!("stop_after must interrupt the sweep");
    };
    assert_eq!((checkpointed, total), (2, 6));
    assert!(
        !resumed_dir.join("result.json").exists(),
        "an interrupted sweep must not write a results contract"
    );
    completed(
        run_sweep_on(&Executor::new(4), &m, &resumed_dir, SweepOptions::default())
            .expect("resumed sweep completes"),
    );

    let reference = std::fs::read(serial_dir.join("result.json")).expect("serial result.json");
    for (dir, label) in [(&wide_dir, "wide-pool"), (&resumed_dir, "resumed")] {
        let got = std::fs::read(dir.join("result.json")).expect("result.json");
        assert_eq!(
            got, reference,
            "{label} sweep result.json differs from the serial sweep"
        );
        let junit = std::fs::read(dir.join("junit.xml")).expect("junit.xml");
        assert_eq!(
            junit,
            std::fs::read(serial_dir.join("junit.xml")).expect("serial junit.xml"),
            "{label} sweep junit.xml differs from the serial sweep"
        );
    }

    for dir in [&serial_dir, &wide_dir, &resumed_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn checkpoint_store_replays_only_missing_cells() {
    let m = sweep_manifest("sweep_replay");
    let dir = out_dir("replay");
    let first = run_sweep_on(
        &Executor::new(2),
        &m,
        &dir,
        SweepOptions {
            stop_after: Some(3),
        },
    )
    .expect("interrupted sweep runs");
    let SweepOutcome::Interrupted { checkpointed, .. } = first else {
        panic!("stop_after must interrupt");
    };
    let store_after_stop = std::fs::read_to_string(dir.join(SWEEP_STORE_NAME)).expect("store");
    // Header + one line per checkpointed cell.
    assert_eq!(store_after_stop.lines().count(), 1 + checkpointed);

    completed(
        run_sweep_on(&Executor::new(2), &m, &dir, SweepOptions::default())
            .expect("resume completes"),
    );
    let store_final = std::fs::read_to_string(dir.join(SWEEP_STORE_NAME)).expect("store");
    assert!(
        store_final.starts_with(&store_after_stop),
        "resume must append, never rewrite"
    );
    assert_eq!(store_final.lines().count(), 1 + 6, "one line per cell");

    // Resuming a *finished* sweep replays everything and runs nothing,
    // still rewriting an identical results contract.
    let before = std::fs::read(dir.join("result.json")).expect("result.json");
    completed(
        run_sweep_on(&Executor::new(2), &m, &dir, SweepOptions::default())
            .expect("no-op resume completes"),
    );
    assert_eq!(
        std::fs::read(dir.join(SWEEP_STORE_NAME)).expect("store"),
        store_final.as_bytes(),
        "a fully-replayed resume appends nothing"
    );
    assert_eq!(
        std::fs::read(dir.join("result.json")).expect("result.json"),
        before
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_heartbeats_are_schema_v2_with_finite_rates() {
    let m = sweep_manifest("sweep_hb");
    let dir = out_dir("hb");
    completed(
        run_sweep_on(&Executor::new(2), &m, &dir, SweepOptions::default()).expect("sweep runs"),
    );
    let text = std::fs::read_to_string(dir.join(SWEEP_HEARTBEAT_NAME)).expect("heartbeats");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6, "one heartbeat per cell");
    for line in &lines {
        for key in [
            "\"schema_version\":2",
            "\"cells_total\":6",
            "\"events_per_sec\"",
            "\"eta_ms\"",
            "\"peak_rss_kb\"",
        ] {
            assert!(line.contains(key), "heartbeat missing {key}: {line}");
        }
        assert!(
            !line.contains("null") && !line.contains("inf") && !line.contains("NaN"),
            "heartbeat leaked a non-finite value: {line}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_refuses_bulk_artifact_manifests_and_foreign_stores() {
    // Bulk artifacts cannot be resumed from a metrics-only store.
    let mut m = sweep_manifest("sweep_bulk");
    m.outputs.paired_dump = true;
    let dir = out_dir("bulk");
    let err = run_sweep_on(&Executor::new(1), &m, &dir, SweepOptions::default())
        .expect_err("bulk-artifact manifests are rejected");
    assert!(err.to_string().contains("paired_dump"), "{err}");

    // A store written for one sweep refuses to feed a different one.
    let m = sweep_manifest("sweep_mine");
    let dir = out_dir("foreign");
    let first = run_sweep_on(
        &Executor::new(1),
        &m,
        &dir,
        SweepOptions {
            stop_after: Some(1),
        },
    )
    .expect("interrupted sweep runs");
    assert!(matches!(first, SweepOutcome::Interrupted { .. }));
    let mut other = m.clone();
    other.seeds.count = 5;
    let err = run_sweep_on(&Executor::new(1), &other, &dir, SweepOptions::default())
        .expect_err("foreign store refuses to resume");
    assert!(err.to_string().contains("different manifest"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
