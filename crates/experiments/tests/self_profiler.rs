//! The self-profiler must be invisible to the simulation, and its
//! artifacts' schemas are pinned so downstream tooling can rely on
//! them.
//!
//! The profiler switch is process-global, so every test that toggles it
//! (or depends on its state) serializes on one mutex.

use std::sync::{Mutex, MutexGuard, PoisonError};

use spdyier_core::{metrics_file, NetworkKind, ProtocolMode, TraceLevel, METRICS_SCHEMA_VERSION};
use spdyier_experiments::{
    paired_cells, profiled_cells_on, run_schedule_traced, Executor, ProfiledSweep,
};
use spdyier_prof::{SelfReport, SinkReport};

static PROF_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    PROF_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wifi_sweep(seeds: u64, jobs: usize) -> ProfiledSweep {
    profiled_cells_on(
        &Executor::new(jobs),
        &paired_cells(seeds),
        NetworkKind::Wifi,
        TraceLevel::Lifecycle,
        None,
    )
}

/// The acceptance bar: a sweep with the profiler enabled produces
/// byte-identical `RunResult` JSON — and a byte-identical trace stream —
/// to the same sweep with the profiler disabled.
#[test]
fn profiler_on_and_off_sweeps_are_byte_identical() {
    let _g = lock();
    spdyier_prof::set_enabled(false);
    let off = wifi_sweep(1, 1);
    spdyier_prof::set_enabled(true);
    let on = wifi_sweep(1, 1);
    spdyier_prof::set_enabled(false);

    assert_eq!(off.runs.len(), on.runs.len());
    for (i, ((run_off, log_off), (run_on, log_on))) in
        off.runs.iter().zip(on.runs.iter()).enumerate()
    {
        assert_eq!(
            serde_json::to_string(run_off).unwrap(),
            serde_json::to_string(run_on).unwrap(),
            "cell {i}: run results diverge under the profiler"
        );
        assert_eq!(
            log_off.to_jsonl(),
            log_on.to_jsonl(),
            "cell {i}: trace streams diverge under the profiler"
        );
    }
    // And the profiler actually observed the enabled sweep.
    assert!(
        off.profile.is_empty(),
        "disabled profiler must record no spans"
    );
    assert!(!on.profile.is_empty(), "enabled profiler must record spans");
    let spans: Vec<&str> = on.profile.spans.keys().map(String::as_str).collect();
    assert!(
        spans.contains(&"driver.deliver") && spans.contains(&"world.service"),
        "expected driver/world spans, got {spans:?}"
    );
}

/// `profile_*.json` end to end: assemble a self-report from a real
/// profiled sweep and pin its schema version and top-level key set.
#[test]
fn profile_report_schema_is_pinned() {
    let _g = lock();
    spdyier_prof::set_enabled(true);
    let sweep = wifi_sweep(1, 2);
    spdyier_prof::set_enabled(false);

    let report = SelfReport::assemble(
        "wifi seeds=1".into(),
        &sweep.profile,
        sweep.wall_ms,
        sweep.telemetry.visits,
        spdyier_prof::AllocCounts {
            allocs: sweep.telemetry.allocs,
            bytes: sweep.telemetry.alloc_bytes,
        },
        sweep.telemetry.events,
        SinkReport::default(),
    );
    assert_eq!(report.schema_version, spdyier_prof::PROFILE_SCHEMA_VERSION);
    assert!(report.visits > 0 && report.events > 0);
    assert!(!report.subsystems.is_empty());
    // Subsystem self-columns partition the span table exactly.
    let span_self: u64 = report.spans.values().map(|s| s.self_ns).sum();
    let subsys_self: u64 = report.subsystems.values().map(|s| s.self_ns).sum();
    assert_eq!(span_self, subsys_self);

    let json = report.to_json();
    for key in [
        "\"schema_version\": 1",
        "\"profiler_enabled\"",
        "\"workload\"",
        "\"wall_ms\"",
        "\"visits\"",
        "\"allocs\"",
        "\"alloc_bytes\"",
        "\"allocs_per_visit\"",
        "\"events\"",
        "\"events_per_sec\"",
        "\"sink\"",
        "\"peak_rss_kb\"",
        "\"subsystems\"",
        "\"spans\"",
        "\"driver\"",
    ] {
        assert!(json.contains(key), "profile_*.json missing {key}");
    }
}

/// `metrics_*.json` end to end: the schema-versioned wrapper, the
/// registry's two sections, and the new trace-loss counters.
#[test]
fn metrics_file_schema_is_pinned() {
    let (_run, log) = run_schedule_traced(
        ProtocolMode::Http,
        NetworkKind::Wifi,
        0,
        TraceLevel::Lifecycle,
    );
    assert_eq!(METRICS_SCHEMA_VERSION, 1);
    let file = metrics_file("http", &log.metrics);
    assert_eq!(file.name, "metrics_http.json");
    for key in [
        "\"schema_version\": 1",
        "\"metrics\"",
        "\"counters\"",
        "\"histograms\"",
        "\"trace.emitted\"",
        "\"trace.sink_dropped\"",
    ] {
        assert!(file.contents.contains(key), "metrics_*.json missing {key}");
    }
    // The published counter matches the recorder's own count.
    assert!(log.metrics.counter("trace.emitted") == log.emitted && log.emitted > 0);
    assert_eq!(log.metrics.counter("trace.sink_dropped"), log.dropped);
}

/// Heartbeats ride the real executor: a 4-worker profiled sweep emits
/// one schema-versioned line per cell with coherent totals.
#[test]
fn heartbeats_cover_every_cell_of_a_parallel_sweep() {
    let _g = lock();
    use std::sync::Arc;
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    spdyier_prof::set_enabled(false);
    let buf = SharedBuf::default();
    let sweep = profiled_cells_on(
        &Executor::new(4),
        &paired_cells(2),
        NetworkKind::Wifi,
        TraceLevel::Lifecycle,
        Some(Box::new(buf.clone())),
    );
    assert_eq!(sweep.telemetry.completed, 4);
    assert_eq!(sweep.telemetry.lines, 4);
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    for line in &lines {
        for key in [
            "\"schema_version\":2",
            "\"cells_total\":4",
            "\"events_per_sec\"",
            "\"allocs_per_visit\"",
            "\"trace_dropped\"",
            "\"eta_ms\"",
            "\"peak_rss_kb\"",
        ] {
            assert!(line.contains(key), "heartbeat missing {key}: {line}");
        }
    }
    // The last line carries the cumulative totals.
    assert!(lines[3].contains("\"cells_completed\":4"));
    assert!(lines[3].contains(&format!("\"visits\":{}", sweep.telemetry.visits)));
}
