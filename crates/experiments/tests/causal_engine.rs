//! Property tests for the causal critical-path engine, driven by real
//! end-to-end runs: conservation (edge durations sum to PLT by
//! construction), RTO coverage (the recorder's RTO-stall intervals and
//! the path's `rto_recovery` edges agree region by region under the
//! engine's causal filtering rules), and byte-identical diff/explain
//! output at any executor width.

use spdyier_causal::{
    critical_paths, diff_paths, explain_json, CriticalPath, EdgeKind, EventModel, Interval,
};
use spdyier_core::{run_experiment_traced, ExperimentConfig, NetworkKind, ProtocolMode};
use spdyier_experiments::Executor;
use spdyier_scenario::Manifest;
use spdyier_trace::{FlightLog, TraceLevel};
use spdyier_workload::VisitSchedule;

/// One traced single-site visit at `Full` level.
fn traced_run(mode: ProtocolMode, network: NetworkKind, seed: u64) -> FlightLog {
    let site = 1 + ((seed * 7) % 20) as u32;
    let cfg = ExperimentConfig::paper_3g(mode, seed)
        .with_network(network)
        .with_trace_level(TraceLevel::Full)
        .with_schedule(VisitSchedule::sequential(
            vec![site],
            spdyier_sim::SimDuration::from_secs(120),
        ));
    let (_, log) = run_experiment_traced(cfg);
    log
}

/// Measure of the union of `intervals` clipped to `[a, b)`, restricted
/// to `conn` when given — mirroring the extractor's filtering rules.
fn union_us(intervals: &[Interval], a: u64, b: u64, conn: Option<usize>) -> u64 {
    let mut clipped: Vec<(u64, u64)> = intervals
        .iter()
        .filter(|iv| conn.is_none() || iv.conn == conn)
        .map(|iv| (iv.a.max(a), iv.b.min(b)))
        .filter(|(s, e)| s < e)
        .collect();
    clipped.sort_unstable();
    let mut total = 0;
    let mut cursor = a;
    for (s, e) in clipped {
        let s = s.max(cursor);
        if s < e {
            total += e - s;
            cursor = e;
        }
    }
    total
}

/// A maximal run of path edges sharing one `object` attribution: an
/// object span (`Some`), or a browser-held gap / the post-anchor tail
/// (`None`).
struct Region {
    object: Option<u32>,
    conn: Option<usize>,
    start_us: u64,
    end_us: u64,
    rto_edge_us: u64,
}

fn regions(p: &CriticalPath) -> Vec<Region> {
    let mut out: Vec<Region> = Vec::new();
    for e in &p.edges {
        let rto = if e.kind == EdgeKind::RtoRecovery {
            e.duration_us()
        } else {
            0
        };
        match out.last_mut() {
            Some(r) if r.object == e.object && r.conn == e.conn && r.end_us == e.start_us => {
                r.end_us = e.end_us;
                r.rto_edge_us += rto;
            }
            _ => out.push(Region {
                object: e.object,
                conn: e.conn,
                start_us: e.start_us,
                end_us: e.end_us,
                rto_edge_us: rto,
            }),
        }
    }
    out
}

/// The two causal-engine invariants, checked against one run's model.
fn check_invariants(model: &EventModel, paths: &[CriticalPath], what: &str) {
    assert!(!paths.is_empty(), "{what}: no visits extracted");
    for p in paths {
        // Conservation: edges tile the window exactly.
        let mut cursor = p.start_us;
        for e in &p.edges {
            assert_eq!(e.start_us, cursor, "{what}: edge gap before {e:?}");
            assert!(e.end_us > e.start_us, "{what}: empty edge {e:?}");
            cursor = e.end_us;
        }
        assert_eq!(cursor, p.end_us, "{what}: edges stop short of the window");
        assert_eq!(
            p.sums_us().iter().sum::<u64>(),
            p.plt_us(),
            "{what}: edge sums != PLT"
        );

        // RTO coverage, region by region. Spans attribute RTO silences on
        // the object's own connection; gaps attribute any connection's.
        // The trailing browser tail (object None, after the last span) is
        // pure parse/eval time and attributes none.
        let regs = regions(p);
        let last_span = regs.iter().rposition(|r| r.object.is_some());
        for (i, r) in regs.iter().enumerate() {
            let expected = match (r.object, last_span) {
                (Some(_), _) => union_us(&model.rto, r.start_us, r.end_us, r.conn),
                (None, Some(last)) if i > last => {
                    assert_eq!(
                        r.rto_edge_us, 0,
                        "{what}: tail region carries rto_recovery time"
                    );
                    continue;
                }
                (None, _) => union_us(&model.rto, r.start_us, r.end_us, None),
            };
            assert_eq!(
                r.rto_edge_us, expected,
                "{what}: region [{}, {}) object {:?} conn {:?}: rto edges {} != attributable RTO {}",
                r.start_us, r.end_us, r.object, r.conn, r.rto_edge_us, expected
            );
        }
    }
}

#[test]
fn conservation_and_rto_coverage_hold_across_the_sweep() {
    let networks = [NetworkKind::Umts3G, NetworkKind::Lte, NetworkKind::Wifi];
    let protocols = [ProtocolMode::Http, ProtocolMode::spdy()];
    for network in networks {
        for protocol in protocols {
            for seed in 0..8u64 {
                let log = traced_run(protocol, network, seed);
                assert_eq!(log.dropped, 0, "lossy trace voids the property");
                let model = EventModel::from_records(&log.events);
                let paths = critical_paths(&model);
                check_invariants(
                    &model,
                    &paths,
                    &format!("{network:?}/{protocol:?}/seed{seed}"),
                );
            }
        }
    }
}

/// Full Table-1 workloads exercise multi-visit windows and every gap
/// shape; one pair per protocol is enough on top of the seed sweep.
#[test]
fn conservation_holds_on_the_full_3g_schedule() {
    for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
        let cfg = ExperimentConfig::paper_3g(protocol, 0)
            .with_network(NetworkKind::Umts3G)
            .with_trace_level(TraceLevel::Full)
            .with_schedule(spdyier_experiments::schedule_for_seed(0));
        let (result, log) = run_experiment_traced(cfg);
        assert_eq!(log.dropped, 0);
        let model = EventModel::from_records(&log.events);
        let paths = critical_paths(&model);
        assert_eq!(paths.len(), result.visits.len());
        check_invariants(&model, &paths, &format!("table1/{protocol:?}"));
        // The extractor's window is the recorder's PLT verbatim.
        for (p, v) in paths.iter().zip(&result.visits) {
            assert_eq!(p.site, v.site as usize);
        }
    }
}

/// The paired-3G scenario through the real executor: diff and explain
/// artifacts are byte-identical serial vs 4-way parallel, and the diff
/// conserves the PLT delta exactly.
#[test]
fn diff_and_explain_are_byte_identical_at_any_pool_width() {
    // Paired HTTP/SPDY at the paper's 3G operating point, full traces.
    let mut manifest = Manifest::paper_baseline("causal_identity");
    manifest.trace = TraceLevel::Full;

    let artifacts = |exec: &Executor| {
        let run = spdyier_experiments::scenario_run::execute_on(exec, &manifest);
        assert!(run.limit_error.is_none());
        let mut per_cell: Vec<(String, Vec<CriticalPath>)> = Vec::new();
        for (cell, result) in run.cells.iter().zip(&run.results) {
            let (_, log) = result.as_ref().expect("cell completed");
            let log = log.as_ref().expect("full trace");
            assert_eq!(log.dropped, 0);
            per_cell.push((
                cell.artifact_label(&manifest),
                spdyier_causal::critical_paths_from_records(&log.events),
            ));
        }
        let [(a_label, a), (b_label, b)] = &per_cell[..] else {
            panic!("paired baseline expands to two cells");
        };
        let report = diff_paths(a_label, a, b_label, b);
        let explains: Vec<String> = per_cell
            .iter()
            .map(|(label, paths)| explain_json(label, paths))
            .collect();
        (report.to_json(), report.to_text(), explains, {
            let deltas: i64 = report.edge_deltas_us().iter().sum();
            (report.plt_delta_us(), deltas)
        })
    };

    let (json1, text1, explains1, (plt_delta, edge_delta)) = artifacts(&Executor::new(1));
    let (json4, text4, explains4, _) = artifacts(&Executor::new(4));
    assert_eq!(json1, json4, "diff.json must not depend on pool width");
    assert_eq!(text1, text4);
    assert_eq!(explains1, explains4);
    assert_eq!(
        plt_delta, edge_delta,
        "diff edge deltas conserve the PLT delta"
    );
}
