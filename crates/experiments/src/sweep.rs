//! The resumable population-scale sweep runner.
//!
//! `experiments sweep <MANIFEST> --out DIR` executes a manifest's cells
//! through the streaming fold path ([`crate::scenario_run`]) with two
//! additions a long sweep needs:
//!
//! * **Checkpointing.** As each cell completes, its [`CellMetrics`]
//!   accumulator is appended to `sweep_store.jsonl` in the output
//!   directory — an append-only, schema-versioned store whose every
//!   line is guarded by a CRC-32 of its payload. A sweep killed at any
//!   point loses at most the cells in flight; the store survives a torn
//!   final line (the tail is dropped on replay).
//! * **Resume.** Re-running the same command against the same output
//!   directory replays the store (after verifying the schema version,
//!   the manifest digest, and the cell count), runs only the missing
//!   cells, and appends their checkpoints. Because each cell's metrics
//!   are a deterministic function of the manifest and the codec
//!   round-trips exactly, the final `result.json` is byte-identical to
//!   an uninterrupted sweep — at any pool width.
//!
//! Workers heartbeat into `heartbeat_sweep.jsonl` via the PR 4
//! [`SweepTelemetry`] (cells done/total, events/s, ETA, peak RSS); on
//! resume the file is appended and the counters cover the resumed
//! invocation's pending cells, so the ETA tracks the work that is
//! actually left.
//!
//! The store checkpoints *metrics only*, so manifests that request
//! per-cell bulk artifacts (`outputs.paired_dump`,
//! `outputs.trace_artifacts`) are rejected up front — those artifacts
//! cannot be reconstructed from a metrics checkpoint, and a
//! population-scale sweep could not afford to retain them anyway.

use crate::exec::Executor;
use crate::scenario_run::{finish_folded, fold_cell, FoldedCell, FoldedRun, ScenarioOutcome};
use serde::{Serialize, Value};
use spdyier_core::{RunError, TraceLevel};
use spdyier_prof::{CellReport, SweepTelemetry};
use spdyier_scenario::{CellMetrics, Manifest};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Schema version stamped into the checkpoint store header.
pub const SWEEP_STORE_SCHEMA_VERSION: u32 = 1;

/// The checkpoint store's file name inside the sweep output directory.
pub const SWEEP_STORE_NAME: &str = "sweep_store.jsonl";

/// The sweep heartbeat file name inside the sweep output directory.
pub const SWEEP_HEARTBEAT_NAME: &str = "heartbeat_sweep.jsonl";

// ---------------------------------------------------------------------
// CRC-32 (IEEE), table-driven, no dependencies
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Store lines
// ---------------------------------------------------------------------

/// A store line is `xxxxxxxx <json>` — eight lowercase hex digits of
/// the CRC-32 of the JSON payload, one space, the payload itself.
fn store_line(json: &str) -> String {
    format!("{:08x} {json}\n", crc32(json.as_bytes()))
}

/// Split and verify one store line, returning its JSON payload.
fn check_line(line: &str) -> Result<&str, String> {
    let (crc_hex, json) = line
        .split_once(' ')
        .ok_or_else(|| "missing CRC prefix".to_string())?;
    let want = u32::from_str_radix(crc_hex, 16).map_err(|_| "malformed CRC prefix".to_string())?;
    let got = crc32(json.as_bytes());
    if want != got {
        return Err(format!(
            "CRC mismatch (recorded {want:08x}, computed {got:08x})"
        ));
    }
    Ok(json)
}

/// A digest of everything that defines the sweep's cells, stamped into
/// the store header so a resume against a *different* manifest (or a
/// different `--seeds` override) is refused instead of silently mixing
/// checkpoints. CRC-32 over the manifest's canonical debug rendering —
/// stable for a given build, which is the only regime a checkpoint
/// store lives in.
pub fn manifest_digest(manifest: &Manifest) -> String {
    format!("{:08x}", crc32(format!("{manifest:?}").as_bytes()))
}

fn header_json(manifest: &Manifest, cells: usize) -> String {
    let v = Value::Object(vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(SWEEP_STORE_SCHEMA_VERSION)),
        ),
        ("kind".into(), Value::Str("sweep_store".into())),
        ("scenario".into(), Value::Str(manifest.name.clone())),
        (
            "manifest_digest".into(),
            Value::Str(manifest_digest(manifest)),
        ),
        ("cells".into(), Value::U64(cells as u64)),
    ]);
    serde_json::to_string(&RawValue(v)).expect("header serializes")
}

fn cell_json(index: usize, metrics: &CellMetrics) -> String {
    let v = Value::Object(vec![
        ("cell".into(), Value::U64(index as u64)),
        ("metrics".into(), metrics.to_value()),
    ]);
    serde_json::to_string(&RawValue(v)).expect("cell checkpoint serializes")
}

struct RawValue(Value);

impl Serialize for RawValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// What replaying a checkpoint store recovered.
#[derive(Debug)]
pub struct Replay {
    /// Per-cell recovered metrics, indexed by cell order; `None` for
    /// cells that still need to run.
    pub done: Vec<Option<CellMetrics>>,
    /// How many distinct cells were recovered.
    pub recovered: usize,
    /// Whether a torn (CRC-failing or unparsable) tail line was
    /// dropped.
    pub dropped_tail: bool,
}

fn u64_field(obj: &Value, field: &str, ctx: &str) -> Result<u64, String> {
    obj.get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer {field:?}"))
}

fn str_field<'a>(obj: &'a Value, field: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx}: missing or non-string {field:?}"))
}

/// Replay `sweep_store.jsonl` at `path` against `manifest` (whose sweep
/// has `cells` cells). A missing file is an empty replay; a header that
/// disagrees on schema version, manifest digest, or cell count is an
/// error (the store belongs to a different sweep). Any line that fails
/// its CRC or does not parse truncates the replay at that point — with
/// append-only writes only the tail can be torn, and re-running the
/// lost cells is always safe.
pub fn replay_store(path: &Path, manifest: &Manifest, cells: usize) -> Result<Replay, String> {
    let mut replay = Replay {
        done: (0..cells).map(|_| None).collect(),
        recovered: 0,
        dropped_tail: false,
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(replay),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return Ok(replay);
    };
    let ctx = format!("{}: header", path.display());
    let header_json = check_line(first).map_err(|e| format!("{ctx}: {e}"))?;
    let header: Value =
        serde_json::from_str(header_json).map_err(|e| format!("{ctx}: invalid JSON: {e}"))?;
    let version = u64_field(&header, "schema_version", &ctx)?;
    if version != u64::from(SWEEP_STORE_SCHEMA_VERSION) {
        return Err(format!(
            "{ctx}: store is schema v{version}, this build speaks v{SWEEP_STORE_SCHEMA_VERSION}"
        ));
    }
    let digest = str_field(&header, "manifest_digest", &ctx)?;
    if digest != manifest_digest(manifest) {
        return Err(format!(
            "{ctx}: store was written for a different manifest \
             (digest {digest}, this sweep is {}); use a fresh --out directory",
            manifest_digest(manifest)
        ));
    }
    let header_cells = u64_field(&header, "cells", &ctx)?;
    if header_cells != cells as u64 {
        return Err(format!(
            "{ctx}: store covers {header_cells} cells, this sweep has {cells}"
        ));
    }
    for (lineno, line) in lines.enumerate() {
        let ctx = format!("{}: line {}", path.display(), lineno + 2);
        let json = match check_line(line) {
            Ok(json) => json,
            Err(_) => {
                // Torn tail: drop this and everything after it.
                replay.dropped_tail = true;
                break;
            }
        };
        let Ok(v) = serde_json::from_str(json) else {
            replay.dropped_tail = true;
            break;
        };
        let index = u64_field(&v, "cell", &ctx)? as usize;
        if index >= cells {
            return Err(format!("{ctx}: cell index {index} out of range"));
        }
        let metrics = v
            .get("metrics")
            .ok_or_else(|| format!("{ctx}: missing \"metrics\""))
            .and_then(|m| CellMetrics::from_value(m).map_err(|e| format!("{ctx}: {e}")))?;
        if replay.done[index].is_none() {
            replay.recovered += 1;
        }
        replay.done[index] = Some(metrics);
    }
    Ok(replay)
}

// ---------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------

/// Sweep knobs beyond the manifest.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions {
    /// Stop (cleanly) after this many *fresh* cells have been
    /// checkpointed, leaving the rest to a resume. The kill-injection
    /// hook the resumability tests and the CI smoke drill use; `None`
    /// runs to completion.
    pub stop_after: Option<usize>,
}

/// How a sweep invocation ended.
#[derive(Debug)]
pub enum SweepOutcome {
    /// Every cell ran (or replayed); the results contract was written.
    Completed(Box<ScenarioOutcome>),
    /// `stop_after` tripped: the store holds `checkpointed` of `total`
    /// cells and the same command resumes the rest.
    Interrupted {
        /// Cells in the store after this invocation.
        checkpointed: usize,
        /// Cells the sweep has in total.
        total: usize,
    },
}

/// A sweep-level configuration error (bad manifest/store combination);
/// maps to the standardized config-error exit.
#[derive(Debug)]
pub struct SweepError(pub String);

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Run (or resume) `manifest`'s sweep on `exec`, checkpointing into and
/// replaying from `out_dir`. See the module docs for the store and
/// resume semantics.
pub fn run_sweep_on(
    exec: &Executor,
    manifest: &Manifest,
    out_dir: &Path,
    opts: SweepOptions,
) -> Result<SweepOutcome, SweepError> {
    if manifest.outputs.paired_dump || manifest.outputs.trace_artifacts {
        return Err(SweepError(
            "experiments sweep: manifest requests per-cell bulk artifacts \
             (outputs.paired_dump / outputs.trace_artifacts), which the \
             metrics-only checkpoint store cannot resume; use `experiments run`"
                .into(),
        ));
    }
    let cells = manifest.cells();
    std::fs::create_dir_all(out_dir)
        .map_err(|e| SweepError(format!("--out {}: {e}", out_dir.display())))?;
    let store_path = out_dir.join(SWEEP_STORE_NAME);
    let replay = replay_store(&store_path, manifest, cells.len()).map_err(SweepError)?;

    let pending: Vec<usize> = (0..cells.len())
        .filter(|&i| replay.done[i].is_none())
        .collect();

    let mut store = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&store_path)
        .map_err(|e| SweepError(format!("{}: {e}", store_path.display())))?;
    if replay.recovered == 0 && !replay.dropped_tail {
        let header = store_line(&header_json(manifest, cells.len()));
        // An empty (or missing) store gets its header now; a store that
        // already replayed cells already has one.
        if store.metadata().map(|m| m.len() == 0).unwrap_or(false) {
            store
                .write_all(header.as_bytes())
                .map_err(|e| SweepError(format!("{}: {e}", store_path.display())))?;
        }
    }
    let store = Mutex::new(store);

    let heartbeat = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_dir.join(SWEEP_HEARTBEAT_NAME))
        .ok()
        .map(|f| Box::new(f) as Box<dyn Write + Send>);
    let telemetry = SweepTelemetry::new(pending.len(), heartbeat);

    let level = manifest.effective_trace();
    let fresh = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let budget = opts.stop_after.unwrap_or(usize::MAX);

    type RawCell =
        Option<Result<(spdyier_core::RunResult, Option<spdyier_core::FlightLog>), RunError>>;
    let folded: Vec<Option<Result<FoldedCell, RunError>>> = exec.run_folded(
        pending.len(),
        |j| -> RawCell {
            if stopped.load(Ordering::Relaxed) {
                return None;
            }
            let cfg = cells[pending[j]].build_config(manifest);
            Some(if level == TraceLevel::Off {
                spdyier_core::try_run_experiment(cfg).map(|r| (r, None))
            } else {
                spdyier_core::try_run_experiment_traced(cfg).map(|(r, log)| (r, Some(log)))
            })
        },
        |j, worker, raw| {
            let raw = raw?;
            let index = pending[j];
            Some(raw.map(|(result, log)| {
                let out = fold_cell(manifest, &cells[index], &result, log.as_ref());
                let line = store_line(&cell_json(index, &out.metrics));
                {
                    let mut store = store
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    // One write_all per checkpoint: a crash can tear at
                    // most the final line, which replay drops.
                    let _ = store.write_all(line.as_bytes());
                }
                if fresh.fetch_add(1, Ordering::Relaxed) + 1 >= budget {
                    stopped.store(true, Ordering::Relaxed);
                }
                telemetry.cell_done(&CellReport {
                    shard: worker,
                    cell: index,
                    visits: out.metrics.visits,
                    events: out
                        .metrics
                        .counters
                        .get("trace.emitted")
                        .copied()
                        .unwrap_or(0),
                    trace_dropped: out
                        .metrics
                        .counters
                        .get("trace.sink_dropped")
                        .copied()
                        .unwrap_or(0),
                    allocs: 0,
                    alloc_bytes: 0,
                });
                out
            }))
        },
    );
    telemetry.finish();

    if folded.iter().any(Option::is_none) {
        return Ok(SweepOutcome::Interrupted {
            checkpointed: replay.recovered + fresh.load(Ordering::Relaxed),
            total: cells.len(),
        });
    }

    // Assemble the folded run in cell order: replayed checkpoints and
    // fresh cells interleave by index, and both kinds carry metrics
    // from the same fold — the store codec round-trips exactly, so the
    // artifacts are byte-identical to an uninterrupted sweep.
    let mut outputs: Vec<Option<FoldedCell>> = replay
        .done
        .into_iter()
        .map(|m| {
            m.map(|metrics| FoldedCell {
                metrics,
                dump_line: None,
                trace_files: Vec::new(),
            })
        })
        .collect();
    let mut limit_error: Option<(usize, RunError)> = None;
    for (j, out) in folded.into_iter().enumerate() {
        let index = pending[j];
        match out.expect("interrupted sweeps returned above") {
            Ok(cell) => outputs[index] = Some(cell),
            Err(e) => {
                if limit_error.is_none() {
                    limit_error = Some((index, e));
                }
            }
        }
    }
    let run = FoldedRun {
        cells,
        outputs,
        limit_error,
    };
    let outcome = finish_folded(manifest, &run, out_dir)
        .map_err(|e| SweepError(format!("--out {}: {e}", out_dir.display())))?;
    Ok(SweepOutcome::Completed(Box::new(outcome)))
}

/// [`run_sweep_on`] with the environment-sized executor.
pub fn run_sweep(
    manifest: &Manifest,
    out_dir: &Path,
    opts: SweepOptions,
) -> Result<SweepOutcome, SweepError> {
    run_sweep_on(&Executor::from_env(), manifest, out_dir, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn store_lines_round_trip_and_reject_corruption() {
        let line = store_line(r#"{"cell":3}"#);
        let json = check_line(line.trim_end()).expect("valid line verifies");
        assert_eq!(json, r#"{"cell":3}"#);
        let corrupted = line.replace("\"cell\":3", "\"cell\":4");
        assert!(check_line(corrupted.trim_end()).is_err());
        assert!(check_line("nocrcprefix").is_err());
    }

    #[test]
    fn manifest_digest_tracks_manifest_identity() {
        let a = Manifest::paper_baseline("sweep_a");
        let mut b = a.clone();
        assert_eq!(manifest_digest(&a), manifest_digest(&b));
        b.seeds.count = 7;
        assert_ne!(manifest_digest(&a), manifest_digest(&b));
    }

    #[test]
    fn replay_of_missing_store_is_empty() {
        let m = Manifest::paper_baseline("sweep_none");
        let replay = replay_store(Path::new("/nonexistent/sweep_store.jsonl"), &m, 4)
            .expect("missing store is an empty replay");
        assert_eq!(replay.recovered, 0);
        assert!(!replay.dropped_tail);
        assert!(replay.done.iter().all(Option::is_none));
    }

    #[test]
    fn replay_refuses_a_foreign_store() {
        let dir =
            std::env::temp_dir().join(format!("spdyier_sweep_foreign_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SWEEP_STORE_NAME);
        let m = Manifest::paper_baseline("sweep_x");
        let mut other = m.clone();
        other.seeds.count = 9;
        std::fs::write(&path, store_line(&header_json(&other, 18))).unwrap();
        let err = replay_store(&path, &m, 4).expect_err("digest mismatch refuses");
        assert!(err.contains("different manifest"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_drops_a_torn_tail_but_keeps_whole_lines() {
        let dir = std::env::temp_dir().join(format!("spdyier_sweep_tail_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SWEEP_STORE_NAME);
        let m = Manifest::paper_baseline("sweep_tail");
        let mut metrics = CellMetrics {
            seed: 5,
            protocol: "http".into(),
            ..CellMetrics::default()
        };
        metrics.visits = 3;
        let mut text = store_line(&header_json(&m, 4));
        text.push_str(&store_line(&cell_json(1, &metrics)));
        let torn = store_line(&cell_json(2, &metrics));
        text.push_str(&torn[..torn.len() / 2]); // crash mid-write
        std::fs::write(&path, text).unwrap();
        let replay = replay_store(&path, &m, 4).expect("replay tolerates torn tail");
        assert_eq!(replay.recovered, 1);
        assert!(replay.dropped_tail);
        assert_eq!(replay.done[1].as_ref().unwrap().visits, 3);
        assert!(replay.done[2].is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
