//! Object-level analyses: Fig. 5 (download-time breakdown), Fig. 6
//! (request patterns), Fig. 7 (synthetic test pages).

use crate::{paired_runs, ExpOpts, Report};
use serde_json::json;
use spdyier_browser::StepAverages;
use spdyier_core::{
    run_experiment, ExperimentConfig, NetworkKind, ProtocolMode, RunResult, VisitResult,
};
use spdyier_sim::SimDuration;
use spdyier_workload::{test_page, VisitSchedule};

fn visits_for_site<'a>(runs: &[&'a RunResult], site: u32) -> Vec<&'a VisitResult> {
    runs.iter()
        .flat_map(|r| r.visits.iter())
        .filter(|v| v.site == site && v.completed)
        .collect()
}

/// Fig. 5: average object download time split into init/send/wait/receive.
pub fn fig5(opts: ExpOpts) -> Report {
    let pairs = paired_runs(NetworkKind::Umts3G, opts, false);
    let http: Vec<&RunResult> = pairs.iter().map(|(h, _)| h).collect();
    let spdy: Vec<&RunResult> = pairs.iter().map(|(_, s)| s).collect();
    let mut text =
        String::from("site   HTTP init/send/wait/recv (ms)      SPDY init/send/wait/recv (ms)\n");
    let mut rows = Vec::new();
    let mut h_tot = StepAverages::default();
    let mut s_tot = StepAverages::default();
    for site in 1..=20u32 {
        let avg_of = |runs: &[&RunResult]| {
            let timings: Vec<_> = visits_for_site(runs, site)
                .iter()
                .flat_map(|v| v.object_timings.iter().copied())
                .collect();
            StepAverages::from_timings(&timings)
        };
        let h = avg_of(&http);
        let s = avg_of(&spdy);
        h_tot.init_ms += h.init_ms / 20.0;
        h_tot.wait_ms += h.wait_ms / 20.0;
        h_tot.recv_ms += h.recv_ms / 20.0;
        s_tot.init_ms += s.init_ms / 20.0;
        s_tot.wait_ms += s.wait_ms / 20.0;
        s_tot.recv_ms += s.recv_ms / 20.0;
        text.push_str(&format!(
            "{:>4}   {:>5.0}/{:>3.0}/{:>5.0}/{:>5.0}            {:>5.0}/{:>3.0}/{:>5.0}/{:>5.0}\n",
            site,
            h.init_ms,
            h.send_ms,
            h.wait_ms,
            h.recv_ms,
            s.init_ms,
            s.send_ms,
            s.wait_ms,
            s.recv_ms
        ));
        rows.push(json!({ "site": site, "http": h, "spdy": s }));
    }
    text.push_str(&format!(
        "\noverall: HTTP init {:.0} ms vs SPDY init {:.0} ms (HTTP pays handshakes/pool waits)\n",
        h_tot.init_ms, s_tot.init_ms
    ));
    text.push_str(&format!(
        "overall: HTTP wait {:.0} ms vs SPDY wait {:.0} ms (SPDY queues at the proxy)\n",
        h_tot.wait_ms, s_tot.wait_ms
    ));
    Report {
        id: "fig5",
        title: "Split of average object download times",
        paper_claim: "send ≈ 0 for both; HTTP has high init (connection setup/reuse waits); SPDY has near-zero init but much higher wait",
        text,
        data: json!({ "sites": rows }),
    }
}

/// Fig. 6: object request patterns for four sites (two news-heavy, two
/// photo-heavy), as cumulative requests over time since visit start.
pub fn fig6(opts: ExpOpts) -> Report {
    let _ = opts;
    let pairs = paired_runs(NetworkKind::Umts3G, ExpOpts { seeds: 1 }, false);
    let (http, spdy) = &pairs[0];
    let sites = [7u32, 15, 12, 18];
    let mut text = String::new();
    let mut data = Vec::new();
    for site in sites {
        for (label, run) in [("HTTP", http), ("SPDY", spdy)] {
            let Some(v) = run.visits.iter().find(|v| v.site == site) else {
                continue;
            };
            let mut req_ms: Vec<f64> = v
                .object_timings
                .iter()
                .filter_map(|t| t.requested)
                .map(|t| t.saturating_since(v.start).as_secs_f64() * 1e3)
                .collect();
            req_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Count distinct request "waves" (steps): gaps > 250 ms.
            let waves = 1 + req_ms.windows(2).filter(|w| w[1] - w[0] > 250.0).count();
            text.push_str(&format!(
                "site {:>2} {:>4}: {:>3} requests over {:>6.0} ms in {} wave(s)\n",
                site,
                label,
                req_ms.len(),
                req_ms.last().copied().unwrap_or(0.0),
                waves
            ));
            data.push(
                json!({ "site": site, "protocol": label, "request_ms": req_ms, "waves": waves }),
            );
        }
    }
    text.push_str(
        "\nSPDY requests arrive in discrete waves (steps) because JS/CSS must download and\nevaluate before dependent objects are discovered; HTTP trickles continuously,\nbounded by its connection pool.\n",
    );
    Report {
        id: "fig6",
        title: "Object request patterns",
        paper_claim:
            "SPDY requests objects in steps, not all at once, due to page interdependencies",
        text,
        data: json!({ "series": data }),
    }
}

/// Fig. 7: the two §5.2 synthetic 50-object test pages (same vs different
/// domains), with no interdependencies.
pub fn fig7(opts: ExpOpts) -> Report {
    let mut text = String::from(
        "page                protocol   PLT (s)   requests issued within (ms of root parse)\n",
    );
    let mut rows = Vec::new();
    for (variant, same) in [("same-domain", true), ("diff-domains", false)] {
        for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
            let mut plts = Vec::new();
            let mut req_span = Vec::new();
            for seed in 0..opts.seeds {
                let page = test_page(50, 40_000, same);
                let cfg = ExperimentConfig::paper_3g(protocol, seed)
                    .with_network(NetworkKind::Umts3G)
                    .with_schedule(VisitSchedule::sequential(
                        vec![1],
                        SimDuration::from_secs(60),
                    ))
                    .with_custom_pages(vec![page]);
                let r = run_experiment(cfg);
                let v = &r.visits[0];
                plts.push(v.plt_ms / 1e3);
                // Span between first and last image request.
                let reqs: Vec<f64> = v.object_timings[1..]
                    .iter()
                    .filter_map(|t| t.requested)
                    .map(|t| t.saturating_since(v.start).as_secs_f64() * 1e3)
                    .collect();
                if let (Some(min), Some(max)) = (
                    reqs.iter().cloned().reduce(f64::min),
                    reqs.iter().cloned().reduce(f64::max),
                ) {
                    req_span.push(max - min);
                }
            }
            let plt = spdyier_sim::stats::mean(&plts);
            let span = spdyier_sim::stats::mean(&req_span);
            text.push_str(&format!(
                "{:<18}  {:<8}  {:>6.2}    {:>6.0}\n",
                variant,
                protocol.label(),
                plt,
                span
            ));
            rows.push(json!({
                "variant": variant,
                "protocol": protocol.label(),
                "plt_s": plt,
                "request_span_ms": span,
            }));
        }
    }
    text.push_str(
        "\npaper measured: HTTP 5.29 s (same) / 6.80 s (diff); SPDY 7.22 s / 8.38 s —\nremoving interdependencies does not rescue SPDY; prioritization alone is not a panacea.\n",
    );
    Report {
        id: "fig7",
        title: "Synthetic 50-object test pages",
        paper_claim: "SPDY requests everything at once but still loads slower than HTTP on 3G (7.22/8.38 s vs 5.29/6.80 s)",
        text,
        data: json!({ "rows": rows }),
    }
}
