//! Back-ends for `experiments explain` and `experiments diff`.
//!
//! Both entry points are pure: they return the artifacts to write plus a
//! one-line summary, and an `Err(String)` the binary reports as a config
//! error (exit 3). Inputs are either raw `trace_*.jsonl` dumps (as
//! written by `experiments trace` / scenario trace artifacts) or a
//! scenario manifest, which is re-run at `Full` trace level on the
//! deterministic executor — so `explain`/`diff` outputs are
//! byte-identical at any `SPDYIER_JOBS` width.
//!
//! Lossy traces are refused outright: if the recorder's ring dropped
//! events (`trace.sink_dropped > 0`), the causal engine's conservation
//! guarantee (edge durations sum to PLT) is void, and a refusal beats a
//! silently-wrong attribution. For raw dumps the drop count comes from
//! the `metrics_<label>.json` sidecar next to the trace, when present.

use crate::exec::Executor;
use crate::scenario_run::{execute_on, ScenarioRun};
use spdyier_causal::CriticalPath;
use spdyier_causal::{critical_paths_from_records, diff_paths, explain_json, explain_text};
use spdyier_core::{DataFile, TraceLevel};
use spdyier_scenario::{Cell, Manifest};
use spdyier_trace::FlightLog;
use std::path::Path;

/// What an `explain`/`diff` invocation produced: files for the caller to
/// write and a one-line summary for it to print.
#[derive(Debug)]
pub struct CausalOutcome {
    /// Artifacts, in write order.
    pub files: Vec<DataFile>,
    /// One-line human summary.
    pub summary: String,
}

/// Whether `path` names a raw trace dump rather than a manifest.
pub fn is_trace_file(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "jsonl")
}

/// Artifact label for a raw dump: `trace_spdy.jsonl` → `spdy`.
fn trace_label(path: &Path) -> String {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    stem.strip_prefix("trace_").unwrap_or(stem).to_string()
}

/// The sink drop count recorded in the `metrics_<label>.json` sidecar
/// next to a raw dump, when one exists.
fn sidecar_dropped(path: &Path, label: &str) -> Option<u64> {
    let sidecar = path.with_file_name(format!("metrics_{label}.json"));
    let text = std::fs::read_to_string(sidecar).ok()?;
    let doc = serde_json::from_str(&text).ok()?;
    doc.get("metrics")?
        .get("counters")?
        .get("trace.sink_dropped")?
        .as_u64()
}

fn lossy_error(what: &str, dropped: u64) -> String {
    format!(
        "{what}: lossy trace ({dropped} event(s) dropped by the recorder ring); \
         critical-path conservation would be unsound — re-record with a larger \
         sink before explaining or diffing"
    )
}

fn refuse_lossy_log(label: &str, log: &FlightLog) -> Result<(), String> {
    if log.dropped > 0 {
        return Err(lossy_error(label, log.dropped));
    }
    Ok(())
}

/// Load one raw dump: refuse lossy sidecars, parse strictly, extract
/// per-visit critical paths.
fn load_trace_paths(path: &Path) -> Result<(String, Vec<CriticalPath>), String> {
    let label = trace_label(path);
    if let Some(dropped) = sidecar_dropped(path, &label) {
        if dropped > 0 {
            return Err(lossy_error(&path.display().to_string(), dropped));
        }
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let records =
        spdyier_causal::parse_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((label, critical_paths_from_records(&records)))
}

/// Whether `filter` (dot-joined terms) selects `cell`, mirroring the
/// assertion DSL's cell filters: protocol compact name, variant name, or
/// `seed<N>`, all case-insensitive.
fn cell_matches(cell: &Cell, filter: &str) -> bool {
    filter.split('.').all(|f| {
        let f = f.to_ascii_lowercase();
        f == cell.protocol.compact().to_ascii_lowercase()
            || (!cell.variant.is_empty() && f == cell.variant.to_ascii_lowercase())
            || f == format!("seed{}", cell.seed)
    })
}

/// Decode `manifest_path` and execute every cell at `Full` trace level
/// (critical paths need per-segment records) on the deterministic
/// executor.
fn run_manifest_traced(manifest_path: &Path) -> Result<(Manifest, ScenarioRun), String> {
    let mut manifest = Manifest::from_file(manifest_path)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    manifest.trace = TraceLevel::Full;
    let run = execute_on(&Executor::from_env(), &manifest);
    if let Some((i, e)) = &run.limit_error {
        let cell = &run.cells[*i];
        return Err(format!(
            "cell {i} ({} seed {}): {e}",
            cell.protocol.compact(),
            cell.seed
        ));
    }
    Ok((manifest, run))
}

/// Critical paths for every cell of an executed manifest that matches
/// `filter` (all cells when absent), labeled by artifact label.
fn manifest_paths(
    manifest: &Manifest,
    run: &ScenarioRun,
    filter: Option<&str>,
) -> Result<Vec<(String, Vec<CriticalPath>)>, String> {
    let mut labeled = Vec::new();
    for (cell, result) in run.cells.iter().zip(&run.results) {
        if let Some(f) = filter {
            if !cell_matches(cell, f) {
                continue;
            }
        }
        let Some((_, Some(log))) = result.as_ref() else {
            continue;
        };
        let label = cell.artifact_label(manifest);
        refuse_lossy_log(&label, log)?;
        labeled.push((label, critical_paths_from_records(&log.events)));
    }
    if labeled.is_empty() {
        return Err(format!(
            "no cells match filter {:?} (cells: {})",
            filter.unwrap_or("<none>"),
            run.cells
                .iter()
                .map(|c| c.artifact_label(manifest))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    Ok(labeled)
}

/// `experiments explain <trace.jsonl|MANIFEST> [--cell FILTER]`:
/// per-visit critical-path extraction, one `explain_<label>.json` (+
/// `.txt` rendering) per selected cell.
pub fn explain(input: &Path, cell_filter: Option<&str>) -> Result<CausalOutcome, String> {
    let labeled = if is_trace_file(input) {
        vec![load_trace_paths(input)?]
    } else {
        let (manifest, run) = run_manifest_traced(input)?;
        manifest_paths(&manifest, &run, cell_filter)?
    };
    let mut files = Vec::new();
    let mut visits = 0usize;
    for (label, paths) in &labeled {
        visits += paths.len();
        files.push(DataFile {
            name: format!("explain_{label}.json"),
            contents: explain_json(label, paths),
        });
        files.push(DataFile {
            name: format!("explain_{label}.txt"),
            contents: explain_text(label, paths),
        });
    }
    let summary = format!(
        "explained {} cell(s), {} visit(s); every critical path's edges sum to its PLT",
        labeled.len(),
        visits
    );
    Ok(CausalOutcome { files, summary })
}

/// One side of a diff: either a raw dump path, or a manifest cell
/// filter resolved against a shared manifest run.
enum Side<'a> {
    File(&'a Path),
    Cell(&'a str),
}

fn side_paths(
    side: &Side<'_>,
    shared: Option<&(Manifest, ScenarioRun)>,
) -> Result<(String, Vec<CriticalPath>), String> {
    match side {
        Side::File(path) => load_trace_paths(path),
        Side::Cell(filter) => {
            let (manifest, run) = shared.expect("manifest run resolved before sides");
            let mut matched = manifest_paths(manifest, run, Some(filter))?;
            if matched.len() > 1 {
                return Err(format!(
                    "filter {:?} matches {} cells ({}); add a seed<N> or variant term so \
                     exactly one run is diffed",
                    filter,
                    matched.len(),
                    matched
                        .iter()
                        .map(|(l, _)| l.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            Ok(matched.remove(0))
        }
    }
}

/// `experiments diff <a.jsonl> <b.jsonl>` or
/// `experiments diff <MANIFEST> --a FILTER --b FILTER`: align two runs of
/// the same workload by visit identity and attribute the PLT delta
/// edge-by-edge into `diff.json` + `diff.txt`.
pub fn diff(
    a_file: Option<&Path>,
    b_file: Option<&Path>,
    manifest_path: Option<&Path>,
    a_filter: Option<&str>,
    b_filter: Option<&str>,
) -> Result<CausalOutcome, String> {
    let (a_side, b_side) = match (a_file, b_file, manifest_path, a_filter, b_filter) {
        (Some(a), Some(b), None, None, None) => (Side::File(a), Side::File(b)),
        (None, None, Some(_), Some(a), Some(b)) => (Side::Cell(a), Side::Cell(b)),
        _ => {
            return Err("usage: experiments diff <a.jsonl> <b.jsonl> [--out DIR]\n\
                 |      experiments diff <MANIFEST> --a FILTER --b FILTER [--out DIR]"
                .into())
        }
    };
    let shared = match manifest_path {
        Some(p) => Some(run_manifest_traced(p)?),
        None => None,
    };
    let (a_label, a_paths) = side_paths(&a_side, shared.as_ref())?;
    let (b_label, b_paths) = side_paths(&b_side, shared.as_ref())?;
    let report = diff_paths(&a_label, &a_paths, &b_label, &b_paths);
    let summary = format!(
        "diff {} -> {}: {} aligned visit(s), total delta {:+.1} ms, dominant edge {}",
        report.a_label,
        report.b_label,
        report.visits.len(),
        report.plt_delta_us() as f64 / 1e3,
        report.dominant_edge().name()
    );
    let files = vec![
        DataFile {
            name: "diff.json".into(),
            contents: report.to_json(),
        },
        DataFile {
            name: "diff.txt".into(),
            contents: report.to_text(),
        },
    ];
    Ok(CausalOutcome { files, summary })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_labels_strip_the_prefix() {
        assert_eq!(trace_label(Path::new("/x/trace_spdy.jsonl")), "spdy");
        assert_eq!(trace_label(Path::new("dump.jsonl")), "dump");
        assert!(is_trace_file(Path::new("a/trace_http.jsonl")));
        assert!(!is_trace_file(Path::new("scenarios/paired_3g.json")));
    }

    #[test]
    fn diff_rejects_mixed_input_shapes() {
        let e = diff(Some(Path::new("a.jsonl")), None, None, None, None).unwrap_err();
        assert!(e.contains("usage"), "{e}");
    }
}
