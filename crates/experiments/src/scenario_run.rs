//! The manifest-driven scenario runner.
//!
//! [`run_manifest`] takes a decoded [`Manifest`], fans its cells across
//! the deterministic parallel [`Executor`] (outputs land in cell order,
//! so every artifact is byte-identical at any pool width), evaluates the
//! manifest's assertions over the pooled cell metrics, and writes the
//! versioned results contract: `result.json`, `junit.xml`, and the
//! optional legacy artifacts (paired dump + sidecar, per-cell trace
//! bundles). The returned [`ScenarioOutcome`] carries the standardized
//! exit code (0 pass / 1 assertion failure / 2 limit exceeded — config
//! errors never reach the runner; they fail at manifest decode, exit 3).
//!
//! Since the streaming-sweep refactor the runner folds as it goes:
//! [`execute_folded_on`] reduces each cell to a [`FoldedCell`] (metrics
//! accumulator + pre-rendered artifacts) **on the worker thread that
//! ran it** and drops the O(visits) [`RunResult`] immediately, so a
//! manifest run holds O(cells) state instead of O(total visits). The
//! collect-everything [`execute_on`] path remains for callers that need
//! raw results (the legacy `trace` subcommand, equivalence tests); its
//! [`finish`] converts into the folded representation and shares the
//! exact same artifact assembly, so both paths are byte-identical by
//! construction.

use crate::exec::Executor;
use serde::{Serialize, Value};
use spdyier_core::{
    attribute_stalls, junit_xml, metrics_file, paired_meta_file, stall_file, stall_manifest_file,
    waterfall_traced_json, AssertionVerdict, DataFile, FlightLog, RunError, RunResult,
    ScenarioExit, TraceLevel, VerdictStatus,
};
use spdyier_scenario::{evaluate, Cell, CellMetrics, Manifest};
use std::path::{Path, PathBuf};

/// Everything a scenario run produced.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Standardized exit status.
    pub exit: ScenarioExit,
    /// One-line human summary (cells run, verdict counts).
    pub summary: String,
    /// Assertion verdicts, in manifest order.
    pub verdicts: Vec<AssertionVerdict>,
    /// Paths written under the output directory.
    pub written: Vec<PathBuf>,
}

/// The raw per-cell results of executing a manifest, in cell order.
pub struct ScenarioRun {
    /// The expanded cells.
    pub cells: Vec<Cell>,
    /// One `(result, flight log)` per completed cell; the log is `None`
    /// when the effective trace level is `Off`.
    pub results: Vec<Option<(RunResult, Option<FlightLog>)>>,
    /// The first cell that exceeded a limit, with its error.
    pub limit_error: Option<(usize, RunError)>,
}

/// One cell's worker-side reduction: everything the results contract
/// needs from the cell, with the raw `RunResult`/`FlightLog` dropped.
#[derive(Debug, Clone)]
pub struct FoldedCell {
    /// The cell's metrics accumulator.
    pub metrics: CellMetrics,
    /// The cell's legacy paired-dump line (serialized `RunResult`),
    /// when the manifest requests the paired dump.
    pub dump_line: Option<String>,
    /// The cell's pre-rendered trace artifacts, when the manifest
    /// requests them (and the cell was traced).
    pub trace_files: Vec<DataFile>,
}

/// The folded per-cell outputs of executing a manifest, in cell order.
#[derive(Debug)]
pub struct FoldedRun {
    /// The expanded cells.
    pub cells: Vec<Cell>,
    /// One folded output per completed cell.
    pub outputs: Vec<Option<FoldedCell>>,
    /// The first cell that exceeded a limit, with its error.
    pub limit_error: Option<(usize, RunError)>,
}

/// Reduce one executed cell to its [`FoldedCell`] under `manifest`'s
/// output options. Both execution paths (and the sweep runner's
/// checkpoint replay) route through this one reducer, so what lands in
/// the artifacts cannot depend on which path produced it.
pub fn fold_cell(
    manifest: &Manifest,
    cell: &Cell,
    result: &RunResult,
    log: Option<&FlightLog>,
) -> FoldedCell {
    let metrics = CellMetrics::from_run(cell, result, log);
    let dump_line = manifest
        .outputs
        .paired_dump
        .then(|| serde_json::to_string(result).expect("serialize run"));
    let trace_files = match log {
        Some(log) if manifest.outputs.trace_artifacts => {
            cell_trace_files(&cell.artifact_label(manifest), result, log)
        }
        _ => Vec::new(),
    };
    FoldedCell {
        metrics,
        dump_line,
        trace_files,
    }
}

/// Execute every cell of `manifest` on `exec`, reducing each cell to a
/// [`FoldedCell`] on the worker that ran it. Peak memory holds at most
/// one raw [`RunResult`] per worker; reduced outputs land in cell
/// order, so artifacts stay byte-identical at any pool width.
pub fn execute_folded_on(exec: &Executor, manifest: &Manifest) -> FoldedRun {
    let cells = manifest.cells();
    let level = manifest.effective_trace();
    let raw = exec.run_folded(
        cells.len(),
        |i| {
            let cfg = cells[i].build_config(manifest);
            if level == TraceLevel::Off {
                spdyier_core::try_run_experiment(cfg).map(|r| (r, None))
            } else {
                spdyier_core::try_run_experiment_traced(cfg).map(|(r, log)| (r, Some(log)))
            }
        },
        |i, _worker, out| {
            out.map(|(result, log)| fold_cell(manifest, &cells[i], &result, log.as_ref()))
        },
    );
    let mut limit_error = None;
    let outputs = raw
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(folded) => Some(folded),
            Err(e) => {
                if limit_error.is_none() {
                    limit_error = Some((i, e));
                }
                None
            }
        })
        .collect();
    FoldedRun {
        cells,
        outputs,
        limit_error,
    }
}

/// Execute every cell of `manifest` on `exec`. Cell outputs are collected
/// in cell order regardless of worker interleaving.
pub fn execute_on(exec: &Executor, manifest: &Manifest) -> ScenarioRun {
    let cells = manifest.cells();
    let level = manifest.effective_trace();
    let raw = exec.run(cells.len(), |i| {
        let cfg = cells[i].build_config(manifest);
        if level == TraceLevel::Off {
            spdyier_core::try_run_experiment(cfg).map(|r| (r, None))
        } else {
            spdyier_core::try_run_experiment_traced(cfg).map(|(r, log)| (r, Some(log)))
        }
    });
    let mut limit_error = None;
    let results = raw
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(pair) => Some(pair),
            Err(e) => {
                if limit_error.is_none() {
                    limit_error = Some((i, e));
                }
                None
            }
        })
        .collect();
    ScenarioRun {
        cells,
        results,
        limit_error,
    }
}

/// The legacy paired-sweep JSONL dump for a paired manifest's run: one
/// serialized [`RunResult`] line per cell, in cell order — for a paired
/// manifest that is HTTP then SPDY per seed, byte-identical to the
/// historical `experiments paired` output.
pub fn paired_dump_string(run: &ScenarioRun) -> String {
    let mut out = String::new();
    for result in run.results.iter().flatten() {
        out.push_str(&serde_json::to_string(&result.0).expect("serialize run"));
        out.push('\n');
    }
    out
}

fn status_str(exit: ScenarioExit) -> &'static str {
    match exit {
        ScenarioExit::Pass => "pass",
        ScenarioExit::AssertionFailed => "fail",
        ScenarioExit::LimitExceeded => "limit",
        ScenarioExit::ConfigError => "config_error",
    }
}

struct SerializeValue(Value);

impl Serialize for SerializeValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Assemble `result.json` (schema v1; the integration suite pins the key
/// set).
fn result_file(
    manifest: &Manifest,
    exit: ScenarioExit,
    cell_metrics: &[CellMetrics],
    verdicts: &[AssertionVerdict],
    limit_detail: Option<&str>,
    artifacts: &[String],
) -> DataFile {
    let mut top: Vec<(String, Value)> = vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(spdyier_core::RESULT_SCHEMA_VERSION)),
        ),
        ("scenario".into(), Value::Str(manifest.name.clone())),
        (
            "description".into(),
            Value::Str(manifest.description.clone()),
        ),
        (
            "network".into(),
            Value::Str(manifest.network.kind.cli_name().into()),
        ),
        (
            "seeds".into(),
            Value::Object(vec![
                ("base".into(), Value::U64(manifest.seeds.base)),
                ("count".into(), Value::U64(manifest.seeds.count)),
            ]),
        ),
        ("status".into(), Value::Str(status_str(exit).into())),
        ("exit_code".into(), Value::I64(i64::from(exit.code()))),
        (
            "cells".into(),
            Value::Array(
                cell_metrics
                    .iter()
                    .map(CellMetrics::summary_value)
                    .collect(),
            ),
        ),
        (
            "assertions".into(),
            Value::Array(verdicts.iter().map(Serialize::to_value).collect()),
        ),
        (
            "artifacts".into(),
            Value::Array(artifacts.iter().map(|a| Value::Str(a.clone())).collect()),
        ),
    ];
    if let Some(detail) = limit_detail {
        top.push(("limit".into(), Value::Str(detail.into())));
    }
    let mut contents =
        serde_json::to_string_pretty(&SerializeValue(Value::Object(top))).expect("result.json");
    contents.push('\n');
    DataFile {
        name: "result.json".into(),
        contents,
    }
}

/// One cell's trace artifacts (the legacy `experiments trace` bundle
/// plus the schema-versioned stall-table sidecar).
fn cell_trace_files(label: &str, result: &RunResult, log: &FlightLog) -> Vec<DataFile> {
    let stalls = stall_file(label, &attribute_stalls(log));
    vec![
        DataFile {
            name: format!("trace_{label}.jsonl"),
            contents: log.to_jsonl(),
        },
        DataFile {
            name: format!("waterfall_{label}.har.json"),
            contents: waterfall_traced_json(result, Some(log)),
        },
        stall_manifest_file(&stalls),
        stalls,
        metrics_file(label, &log.metrics),
    ]
}

/// Run a manifest end to end on the default executor and write its
/// artifacts to `out_dir`.
pub fn run_manifest(manifest: &Manifest, out_dir: &Path) -> std::io::Result<ScenarioOutcome> {
    run_manifest_on(&Executor::from_env(), manifest, out_dir)
}

/// [`run_manifest`] on an explicit executor (tests pin the pool width).
/// Routed through the fold path: cells reduce worker-side and the raw
/// results never accumulate.
pub fn run_manifest_on(
    exec: &Executor,
    manifest: &Manifest,
    out_dir: &Path,
) -> std::io::Result<ScenarioOutcome> {
    let run = execute_folded_on(exec, manifest);
    finish_folded(manifest, &run, out_dir)
}

/// Evaluate assertions over an executed [`ScenarioRun`] and write the
/// results-contract artifacts. Split from [`run_manifest_on`] so callers
/// that need the raw run (the legacy `trace` subcommand prints event
/// counts) can execute first and finish after. Internally this folds
/// the retained results and delegates to [`finish_folded`] — one
/// assembly routine, so the two paths cannot drift apart.
pub fn finish(
    manifest: &Manifest,
    run: &ScenarioRun,
    out_dir: &Path,
) -> std::io::Result<ScenarioOutcome> {
    let folded = FoldedRun {
        cells: run.cells.clone(),
        outputs: run
            .cells
            .iter()
            .zip(&run.results)
            .map(|(cell, result)| {
                result
                    .as_ref()
                    .map(|(r, log)| fold_cell(manifest, cell, r, log.as_ref()))
            })
            .collect(),
        limit_error: run.limit_error.clone(),
    };
    finish_folded(manifest, &folded, out_dir)
}

/// Evaluate assertions over a [`FoldedRun`] and write the
/// results-contract artifacts.
pub fn finish_folded(
    manifest: &Manifest,
    run: &FoldedRun,
    out_dir: &Path,
) -> std::io::Result<ScenarioOutcome> {
    let cell_metrics: Vec<CellMetrics> = run
        .outputs
        .iter()
        .flatten()
        .map(|f| f.metrics.clone())
        .collect();

    let (verdicts, limit_detail, exit);
    if let Some((index, e)) = &run.limit_error {
        let cell = &run.cells[*index];
        limit_detail = Some(format!(
            "cell {} ({} seed {}): {}",
            index,
            cell.protocol.compact(),
            cell.seed,
            e
        ));
        verdicts = Vec::new();
        exit = ScenarioExit::LimitExceeded;
    } else {
        limit_detail = None;
        verdicts = evaluate(manifest, &cell_metrics);
        let failed = verdicts.iter().any(|v| v.status == VerdictStatus::Fail);
        exit = if failed {
            ScenarioExit::AssertionFailed
        } else {
            ScenarioExit::Pass
        };
    }

    let mut files = vec![DataFile {
        name: "junit.xml".into(),
        contents: junit_xml(&manifest.name, &verdicts),
    }];
    if manifest.outputs.paired_dump && run.limit_error.is_none() {
        let dump_name = format!("paired_{}.jsonl", manifest.network.kind.cli_name());
        let mut dump = String::new();
        for line in run
            .outputs
            .iter()
            .flatten()
            .filter_map(|f| f.dump_line.as_deref())
        {
            dump.push_str(line);
            dump.push('\n');
        }
        let keys = spdyier_core::contract::json_line_keys(dump.lines().next().unwrap_or_default());
        files.push(paired_meta_file(
            &dump_name,
            manifest.network.kind.cli_name(),
            manifest.seeds.count,
            &keys,
        ));
        files.push(DataFile {
            name: dump_name,
            contents: dump,
        });
    }
    files.extend(
        run.outputs
            .iter()
            .flatten()
            .flat_map(|f| f.trace_files.iter().cloned()),
    );
    let artifact_names: Vec<String> = std::iter::once("result.json".to_string())
        .chain(files.iter().map(|f| f.name.clone()))
        .collect();
    files.insert(
        0,
        result_file(
            manifest,
            exit,
            &cell_metrics,
            &verdicts,
            limit_detail.as_deref(),
            &artifact_names,
        ),
    );

    let written = spdyier_core::write_to_dir(&files, out_dir)?;

    let passed = verdicts
        .iter()
        .filter(|v| v.status == VerdictStatus::Pass)
        .count();
    let failed = verdicts
        .iter()
        .filter(|v| v.status == VerdictStatus::Fail)
        .count();
    let skipped = verdicts
        .iter()
        .filter(|v| v.status == VerdictStatus::Skipped)
        .count();
    let summary = match &limit_detail {
        Some(detail) => format!(
            "scenario {}: LIMIT EXCEEDED ({detail}) — exit {}",
            manifest.name,
            exit.code()
        ),
        None => format!(
            "scenario {}: {} cell(s), {passed} passed / {failed} failed / {skipped} skipped — exit {}",
            manifest.name,
            run.cells.len(),
            exit.code()
        ),
    };
    Ok(ScenarioOutcome {
        exit,
        summary,
        verdicts,
        written,
    })
}
