//! TCP window dynamics: Fig. 11 (SPDY cwnd/ssthresh over a run), Fig. 12
//! (the 40–190 s zoom), Fig. 13 (retransmission bursts per connection),
//! Fig. 17 (LTE cwnd trace).

use crate::{run_schedule, ExpOpts, Report};
use serde_json::json;
use spdyier_core::{NetworkKind, ProtocolMode, RunResult};
use spdyier_sim::{SimDuration, SimTime};

fn spdy_trace_report(
    id: &'static str,
    title: &'static str,
    paper_claim: &'static str,
    network: NetworkKind,
    window: Option<(u64, u64)>,
) -> Report {
    let run = run_schedule(ProtocolMode::spdy(), network, 0, true);
    let ct = run
        .conn_traces
        .iter()
        .find(|c| c.trace.is_some())
        .expect("traced SPDY connection");
    let tr = ct.trace.as_ref().expect("trace enabled");
    let (lo, hi) = window.unwrap_or((0, 20 * 60));
    let (lo_t, hi_t) = (SimTime::from_secs(lo), SimTime::from_secs(hi));
    let bin = SimDuration::from_secs(1);
    let horizon = SimTime::from_secs(hi);
    let cwnd = tr.cwnd_segments.bin_last(bin, horizon, 10.0);
    // Display-only substitution: plot "ssthresh unset" at a 999-segment
    // ceiling so the step trace stays on a finite axis.
    let ssthresh = tr
        .ssthresh_segments
        .to_series(999.0)
        .bin_last(bin, horizon, 999.0);
    let rtx: Vec<u64> = tr
        .retransmits
        .times()
        .filter(|&t| t >= lo_t && t < hi_t)
        .map(|t| t.as_millis())
        .collect();
    let idle_restarts: Vec<u64> = tr
        .idle_restarts
        .times()
        .filter(|&t| t >= lo_t && t < hi_t)
        .map(|t| t.as_millis())
        .collect();
    let mut text = String::from("t(s)   cwnd(seg)  ssthresh(seg)\n");
    let step = ((hi - lo) / 30).max(1) as usize;
    for i in (lo as usize..hi as usize).step_by(step) {
        text.push_str(&format!(
            "{:>4}   {:>9.1}  {:>12.1}\n",
            i,
            cwnd[i],
            ssthresh[i].min(200.0)
        ));
    }
    text.push_str(&format!(
        "\nretransmissions in window: {} (at ms: {:?}{})\n",
        rtx.len(),
        &rtx[..rtx.len().min(12)],
        if rtx.len() > 12 { ", …" } else { "" }
    ));
    text.push_str(&format!(
        "idle restarts (cwnd → IW) in window: {}\n",
        idle_restarts.len()
    ));
    let max_cwnd = cwnd[lo as usize..hi as usize]
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    text.push_str(&format!("max cwnd in window: {max_cwnd:.0} segments\n"));
    // Terminal rendering: the cwnd trace with retransmissions marked.
    let window_len = (hi - lo) as usize;
    let cols = 100usize.min(window_len);
    let downsampled: Vec<f64> = (0..cols)
        .map(|i| cwnd[lo as usize + i * window_len / cols])
        .collect();
    text.push('\n');
    text.push_str(&crate::ascii::step_trace(&downsampled, 8, "time", "cwnd"));
    let rtx_rel: Vec<f64> = rtx.iter().map(|&ms| ms as f64 / 1e3 - lo as f64).collect();
    text.push_str(&crate::ascii::event_axis(
        &rtx_rel,
        (hi - lo) as f64,
        cols,
        "rtx",
    ));
    Report {
        id,
        title,
        paper_claim,
        text,
        data: json!({
            "cwnd_per_sec": &cwnd[lo as usize..hi as usize],
            "ssthresh_per_sec": &ssthresh[lo as usize..hi as usize],
            "rtx_ms": rtx,
            "idle_restart_ms": idle_restarts,
        }),
    }
}

/// Fig. 11: cwnd/ssthresh/retransmissions for one full SPDY run on 3G.
pub fn fig11(_opts: ExpOpts) -> Report {
    spdy_trace_report(
        "fig11",
        "SPDY cwnd, ssthresh and retransmissions (3G, full run)",
        "cwnd and ssthresh fluctuate all run; retransmission bursts recur; cwnd is the ceiling on outstanding data",
        NetworkKind::Umts3G,
        None,
    )
}

/// Fig. 12: the 40–190 s zoom of Fig. 11 (three consecutive websites).
pub fn fig12(_opts: ExpOpts) -> Report {
    spdy_trace_report(
        "fig12",
        "SPDY cwnd/ssthresh, 40–190 s zoom",
        "idle periods trigger cwnd collapse to 10; promotions trigger spurious retransmissions that also crush ssthresh",
        NetworkKind::Umts3G,
        Some((40, 190)),
    )
}

/// Fig. 13: retransmission bursts affect individual connections (HTTP).
pub fn fig13(_opts: ExpOpts) -> Report {
    let run: RunResult = run_schedule(ProtocolMode::Http, NetworkKind::Umts3G, 0, true);
    // Rank connections by retransmissions.
    let mut per_conn: Vec<(&str, u64, Vec<u64>)> = run
        .conn_traces
        .iter()
        .map(|c| {
            let times: Vec<u64> = c
                .trace
                .as_ref()
                .map(|t| t.retransmits.times().map(|x| x.as_millis()).collect())
                .unwrap_or_default();
            (c.label.as_str(), c.stats.retransmissions, times)
        })
        .filter(|(_, n, _)| *n > 0)
        .collect();
    per_conn.sort_by_key(|(_, n, _)| std::cmp::Reverse(*n));
    let total: u64 = per_conn.iter().map(|(_, n, _)| *n).sum();
    let conns_with_rtx = per_conn.len();
    let total_conns = run.conn_traces.len();
    let mut text = format!(
        "connections: {total_conns}; with ≥1 retransmission: {conns_with_rtx}; total rtx {total} \
         ({:.1} per affected connection)\n\nworst connections:\n",
        total as f64 / conns_with_rtx.max(1) as f64
    );
    let mut rows = Vec::new();
    for (label, n, times) in per_conn.iter().take(8) {
        let bursts = burst_count(times, 1_000);
        text.push_str(&format!(
            "  {label}: {n} rtx in {bursts} burst(s) at {:?}{}\n",
            &times[..times.len().min(6)],
            if times.len() > 6 { ", …" } else { "" }
        ));
        rows.push(json!({ "conn": label, "rtx": n, "times_ms": times, "bursts": bursts }));
    }
    text.push_str(
        "\nbursts hit one TCP stream while the rest keep flowing — HTTP's late binding of\nrequests to connections routes around the victims; SPDY's single stream cannot.\n",
    );
    Report {
        id: "fig13",
        title: "Retransmission bursts affecting single connections (HTTP)",
        paper_claim: "HTTP has more total retransmissions but they are bursty and typically hit one connection (≈2.9 per connection across ≈42 concurrent)",
        text,
        data: json!({ "connections": rows, "total_rtx": total }),
    }
}

fn burst_count(times_ms: &[u64], gap_ms: u64) -> usize {
    if times_ms.is_empty() {
        return 0;
    }
    1 + times_ms.windows(2).filter(|w| w[1] - w[0] > gap_ms).count()
}

/// Fig. 17: SPDY congestion window and retransmissions over LTE — the
/// problem shrinks but persists.
pub fn fig17(_opts: ExpOpts) -> Report {
    let mut report = spdy_trace_report(
        "fig17",
        "SPDY cwnd and retransmissions over LTE",
        "retransmissions still occur after idle periods on LTE, albeit less frequently than 3G",
        NetworkKind::Lte,
        None,
    );
    let rtx = report.data["rtx_ms"]
        .as_array()
        .map(|a| a.len())
        .unwrap_or(0);
    report.text.push_str(&format!(
        "\nLTE run total SPDY-connection retransmissions: {rtx} — far below the 3G trace, but not zero:\npost-idle spurious timeouts survive the faster (400 ms) promotion.\n"
    ));
    report
}
