//! The `experiments` binary: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <id|all> [--seeds N] [--json DIR]
//! experiments export <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]
//! experiments trace <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]
//! ```
//!
//! The `export` form runs one full schedule with traces and writes
//! gnuplot-ready `.dat` files (PLTs, per-second downlink, bytes in
//! flight, retransmissions, promotions, proxy timelines, per-connection
//! cwnd traces) to `DIR`.
//!
//! The `trace` form runs one full schedule with the flight recorder on
//! (level from `SPDYIER_TRACE`, default `full`) and writes the raw
//! JSONL event stream, the HAR-style waterfall, the per-visit stall
//! attribution table, and the metrics registry to `DIR`.
//!
//! The `profile` form turns the host-side self-profiler on and runs one
//! or more schedules (`--seeds N`, fanned across `SPDYIER_JOBS`
//! workers), writing `profile_<proto>.json` (wall-time / allocations /
//! events-per-second by subsystem), `heartbeat_<proto>.jsonl` (one line
//! per completed cell), and the merged `metrics_<proto>.json` to `DIR`.

use spdyier_core::{
    attribute_stalls, export_run, metrics_file, stall_file, waterfall_json, write_to_dir, DataFile,
    NetworkKind, ProtocolMode, TraceLevel,
};
use spdyier_experiments::{
    paired_runs, profiled_cells_on, run_by_id, run_schedule, run_schedule_traced, Executor,
    ExpOpts, ALL_EXPERIMENTS,
};
use spdyier_trace::MetricsRegistry;
use std::io::Write;

/// Count every allocation the binary makes, so `profile` runs can report
/// allocations per visit and per subsystem (near-zero cost otherwise:
/// two relaxed atomic increments per allocation).
#[global_allocator]
static GLOBAL: spdyier_prof::CountingAlloc = spdyier_prof::CountingAlloc;

fn run_export(args: &[String]) -> ! {
    let (protocol, network, dir, seed) = parse_run_args(args, "export");
    let result = run_schedule(protocol, network, seed, true);
    let files = export_run(&result);
    let paths = write_to_dir(&files, &dir).expect("write export dir");
    for p in &paths {
        println!("wrote {}", p.display());
    }
    std::process::exit(0);
}

/// Parse the shared `<http|spdy> <network> <DIR> [--seed N]` tail.
fn parse_run_args(
    args: &[String],
    cmd: &str,
) -> (ProtocolMode, NetworkKind, std::path::PathBuf, u64) {
    let usage = || -> ! {
        eprintln!("usage: experiments {cmd} <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]");
        std::process::exit(2);
    };
    if args.len() < 3 {
        usage();
    }
    let protocol = match args[0].as_str() {
        "http" => ProtocolMode::Http,
        "spdy" => ProtocolMode::spdy(),
        _ => usage(),
    };
    let network = match args[1].as_str() {
        "3g" => NetworkKind::Umts3G,
        "lte" => NetworkKind::Lte,
        "wifi" => NetworkKind::Wifi,
        "3g-pinned" => NetworkKind::Umts3GPinned,
        _ => usage(),
    };
    let dir = std::path::PathBuf::from(&args[2]);
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (protocol, network, dir, seed)
}

fn run_trace(args: &[String]) -> ! {
    let (protocol, network, dir, seed) = parse_run_args(args, "trace");
    let level = match TraceLevel::from_env() {
        TraceLevel::Off => TraceLevel::Full,
        explicit => explicit,
    };
    let (result, log) = run_schedule_traced(protocol, network, seed, level);
    let proto = result.protocol.to_lowercase();
    let stalls = attribute_stalls(&log);
    let files = vec![
        DataFile {
            name: format!("trace_{proto}.jsonl"),
            contents: log.to_jsonl(),
        },
        DataFile {
            name: format!("waterfall_{proto}.har.json"),
            contents: waterfall_json(&result),
        },
        stall_file(&proto, &stalls),
        metrics_file(&proto, &log.metrics),
    ];
    let paths = write_to_dir(&files, &dir).expect("write trace dir");
    println!(
        "traced {} on {:?} at {:?}: {} events ({} dropped)",
        result.protocol,
        network,
        level,
        log.events.len(),
        log.dropped
    );
    for p in &paths {
        println!("wrote {}", p.display());
    }
    std::process::exit(0);
}

/// Run one or more profiled schedules and write the self-observability
/// artifacts: `profile_<proto>.json` (the span/subsystem self-report),
/// `heartbeat_<proto>.jsonl` (one line per completed cell), and
/// `metrics_<proto>.json` (the merged trace metrics registry, which now
/// includes `trace.emitted` / `trace.sink_dropped`).
fn run_profile(args: &[String]) -> ! {
    let (protocol, network, dir, seed) = parse_run_args(args, "profile");
    let seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let level = match TraceLevel::from_env() {
        TraceLevel::Off => TraceLevel::Lifecycle,
        explicit => explicit,
    };
    let proto = match protocol {
        ProtocolMode::Http => "http",
        ProtocolMode::Spdy { .. } => "spdy",
    };
    let cells: Vec<(ProtocolMode, u64)> = (seed..seed + seeds).map(|s| (protocol, s)).collect();

    std::fs::create_dir_all(&dir).expect("create profile dir");
    let hb_path = dir.join(format!("heartbeat_{proto}.jsonl"));
    let heartbeat: Box<dyn Write + Send> =
        Box::new(std::fs::File::create(&hb_path).expect("create heartbeat file"));

    spdyier_prof::set_enabled(true);
    let alloc_before = spdyier_prof::global_counts();
    let sweep = profiled_cells_on(
        &Executor::from_env(),
        &cells,
        network,
        level,
        Some(heartbeat),
    );
    let alloc_delta = spdyier_prof::global_counts().since(alloc_before);

    let mut metrics = MetricsRegistry::new();
    let mut retained = 0u64;
    for (_, log) in &sweep.runs {
        metrics.merge(&log.metrics);
        retained += log.events.len() as u64;
    }
    let secs = sweep.wall_ms / 1e3;
    let report = spdyier_prof::SelfReport::assemble(
        format!("{proto} {} seeds={seeds}", args[1]),
        &sweep.profile,
        sweep.wall_ms,
        sweep.telemetry.visits,
        alloc_delta,
        sweep.telemetry.events,
        spdyier_prof::SinkReport {
            emitted: sweep.telemetry.events,
            retained,
            dropped: sweep.telemetry.trace_dropped,
            events_per_sec: if secs > 0.0 {
                sweep.telemetry.events as f64 / secs
            } else {
                0.0
            },
        },
    );
    spdyier_prof::set_enabled(false);
    let files = vec![
        DataFile {
            name: format!("profile_{proto}.json"),
            contents: report.to_json(),
        },
        metrics_file(proto, &metrics),
    ];
    let paths = write_to_dir(&files, &dir).expect("write profile dir");
    println!(
        "profiled {} cell(s) of {} on {:?} at {:?}: {:.0} ms, {} events ({:.0}/s), {:.0} allocs/visit",
        cells.len(),
        proto,
        network,
        level,
        sweep.wall_ms,
        sweep.telemetry.events,
        report.events_per_sec,
        report.allocs_per_visit,
    );
    for row in report.subsystems.iter().map(|(name, s)| {
        format!(
            "  {name:<10} {:>10.1} ms self  {:>12} allocs  {:>8} calls",
            s.self_ns as f64 / 1e6,
            s.allocs,
            s.calls
        )
    }) {
        println!("{row}");
    }
    println!("wrote {}", hb_path.display());
    for p in &paths {
        println!("wrote {}", p.display());
    }
    std::process::exit(0);
}

/// Run the paired sweep on one network and dump every `RunResult` as one
/// JSON line (HTTP then SPDY per seed). The output is byte-stable for a
/// given build, which makes it the reference artifact for the CI
/// byte-identity guard: dump before and after a data-plane change and
/// `cmp` the files.
fn run_paired(args: &[String]) -> ! {
    let usage = || -> ! {
        eprintln!("usage: experiments paired <3g|lte|wifi|3g-pinned> <FILE> [--seeds N]");
        std::process::exit(2);
    };
    if args.len() < 2 {
        usage();
    }
    let network = match args[0].as_str() {
        "3g" => NetworkKind::Umts3G,
        "lte" => NetworkKind::Lte,
        "wifi" => NetworkKind::Wifi,
        "3g-pinned" => NetworkKind::Umts3GPinned,
        _ => usage(),
    };
    let mut opts = ExpOpts::default();
    if let Some(i) = args.iter().position(|a| a == "--seeds") {
        opts.seeds = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage());
    }
    let pairs = paired_runs(network, opts, true);
    let mut out = String::new();
    for (http, spdy) in &pairs {
        out.push_str(&serde_json::to_string(http).expect("serialize http run"));
        out.push('\n');
        out.push_str(&serde_json::to_string(spdy).expect("serialize spdy run"));
        out.push('\n');
    }
    let path = std::path::PathBuf::from(&args[1]);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create dump dir");
        }
    }
    std::fs::write(&path, out).expect("write paired dump");
    println!("wrote {} ({} pairs)", path.display(), pairs.len());
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <id|all> [--seeds N] [--json DIR]");
        eprintln!("       experiments export <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]");
        eprintln!("       experiments trace <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]");
        eprintln!("       experiments paired <3g|lte|wifi|3g-pinned> <FILE> [--seeds N]");
        eprintln!(
            "       experiments profile <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N] [--seeds N]"
        );
        eprintln!("ids: {}", ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    if args[0] == "export" {
        run_export(&args[1..]);
    }
    if args[0] == "trace" {
        run_trace(&args[1..]);
    }
    if args[0] == "profile" {
        run_profile(&args[1..]);
    }
    if args[0] == "paired" {
        run_paired(&args[1..]);
    }
    let mut opts = ExpOpts::default();
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                opts.seeds = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seeds needs a number");
                    std::process::exit(2);
                });
            }
            "--json" => {
                i += 1;
                json_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a directory");
                    std::process::exit(2);
                }));
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.iter().any(|x| x == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        let started = std::time::Instant::now();
        match run_by_id(id, opts) {
            Some(report) => {
                println!("{}", report.render());
                println!("[{} completed in {:.1?}]\n", id, started.elapsed());
                if let Some(dir) = &json_dir {
                    std::fs::create_dir_all(dir).expect("create json dir");
                    let path = format!("{dir}/{id}.json");
                    let mut f = std::fs::File::create(&path).expect("create json file");
                    let blob = serde_json::json!({
                        "id": report.id,
                        "title": report.title,
                        "paper_claim": report.paper_claim,
                        "data": report.data,
                    });
                    writeln!(
                        f,
                        "{}",
                        serde_json::to_string_pretty(&blob).expect("serialize")
                    )
                    .expect("write json");
                    eprintln!("wrote {path}");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                eprintln!("ids: {}", ALL_EXPERIMENTS.join(" "));
                std::process::exit(2);
            }
        }
    }
}
