//! The `experiments` binary: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <id|all> [--seeds N] [--json DIR]
//! experiments run <MANIFEST.(json|yaml)> [--out DIR] [--seeds N]
//! experiments export <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]
//! experiments trace <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]
//! experiments explain <trace.jsonl|MANIFEST> [--cell FILTER] [--out DIR]
//! experiments diff <a.jsonl> <b.jsonl> [--out DIR]
//! experiments diff <MANIFEST> --a FILTER --b FILTER [--out DIR]
//! ```
//!
//! The `run` form executes a declarative scenario manifest (JSON, or the
//! strict YAML subset) end to end: expand cells, fan them across
//! `SPDYIER_JOBS` workers, evaluate assertions, and write the versioned
//! results contract (`result.json`, `junit.xml`, optional paired dump
//! and trace artifacts) to the output directory. Exit codes are
//! standardized: 0 pass, 1 assertion failure, 2 limit exceeded, 3
//! config error.
//!
//! The `export` form runs one full schedule with traces and writes
//! gnuplot-ready `.dat` files (PLTs, per-second downlink, bytes in
//! flight, retransmissions, promotions, proxy timelines, per-connection
//! cwnd traces) to `DIR`.
//!
//! The `trace` form runs one full schedule with the flight recorder on
//! (level from `SPDYIER_TRACE`, default `full`) and writes the raw
//! JSONL event stream, the HAR-style waterfall, the per-visit stall
//! attribution table, and the metrics registry to `DIR` — routed
//! through the same scenario runner as `run`, so the directory also
//! gains `result.json`, `junit.xml`, and the stall-table sidecar.
//!
//! The `paired` form is likewise a pre-baked paired-sweep manifest: one
//! `RunResult` JSON line per run (HTTP then SPDY per seed), plus a
//! `.meta.json` schema sidecar next to the dump.
//!
//! The `explain` form extracts each visit's causal critical path from a
//! recorded trace (or re-runs a manifest's cells at `Full` trace level)
//! and writes `explain_<label>.json` / `.txt` — every path's edge
//! durations sum to the visit's PLT by construction. The `diff` form
//! aligns two runs of the same workload by visit identity and
//! attributes the PLT delta edge-by-edge into `diff.json` / `diff.txt`.
//! Both refuse lossy traces (recorder drops) with exit 3.
//!
//! The `profile` form turns the host-side self-profiler on and runs one
//! or more schedules (`--seeds N`, fanned across `SPDYIER_JOBS`
//! workers), writing `profile_<proto>.json` (wall-time / allocations /
//! events-per-second by subsystem), `heartbeat_<proto>.jsonl` (one line
//! per completed cell), and the merged `metrics_<proto>.json` to `DIR`.

use spdyier_core::{
    export_run, metrics_file, write_to_dir, DataFile, NetworkSpec, ProtocolMode, ScenarioExit,
    TraceLevel,
};
use spdyier_experiments::{
    profiled_cells_on, run_by_id, run_schedule, scenario_run, Executor, ExpOpts, ALL_EXPERIMENTS,
};
use spdyier_scenario::{Manifest, ProtocolSpec, Seeds};
use spdyier_trace::MetricsRegistry;
use std::io::Write;

/// Count every allocation the binary makes, so `profile` runs can report
/// allocations per visit and per subsystem (near-zero cost otherwise:
/// two relaxed atomic increments per allocation).
#[global_allocator]
static GLOBAL: spdyier_prof::CountingAlloc = spdyier_prof::CountingAlloc;

/// One-line config diagnostic, then the standardized config-error exit.
fn config_error(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(ScenarioExit::ConfigError.code());
}

/// Parse the value following `--flag N` as an unsigned integer; absent
/// flag yields `default`, present-but-malformed names the flag and
/// exits 3.
fn parse_flag_u64(args: &[String], flag: &str, default: u64) -> u64 {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return default;
    };
    let Some(raw) = args.get(i + 1) else {
        config_error(&format!("{flag}: expected a number after the flag"));
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => config_error(&format!(
            "{flag}: expected an unsigned integer, got {raw:?}"
        )),
    }
}

fn run_export(args: &[String]) -> ! {
    let (protocol, network, dir, seed) = parse_run_args(args, "export");
    let result = run_schedule(protocol.mode, network, seed, true);
    let files = export_run(&result);
    let paths = write_to_dir(&files, &dir).expect("write export dir");
    for p in &paths {
        println!("wrote {}", p.display());
    }
    std::process::exit(0);
}

/// Parse the shared `<http|spdy> <network> <DIR> [--seed N]` tail.
fn parse_run_args(
    args: &[String],
    cmd: &str,
) -> (ProtocolSpec, NetworkSpec, std::path::PathBuf, u64) {
    if args.len() < 3 {
        config_error(&format!(
            "usage: experiments {cmd} <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]"
        ));
    }
    let protocol = ProtocolSpec::parse(&args[0])
        .unwrap_or_else(|e| config_error(&format!("experiments {cmd}: protocol: {e}")));
    let network: NetworkSpec = args[1]
        .parse()
        .unwrap_or_else(|e| config_error(&format!("experiments {cmd}: network: {e}")));
    let dir = std::path::PathBuf::from(&args[2]);
    let seed = parse_flag_u64(args, "--seed", 0);
    (protocol, network, dir, seed)
}

fn run_trace(args: &[String]) -> ! {
    let (protocol, network, dir, seed) = parse_run_args(args, "trace");
    let level = match TraceLevel::from_env() {
        TraceLevel::Off => TraceLevel::Full,
        explicit => explicit,
    };
    // The legacy trace run, re-expressed as a scenario manifest.
    let mut manifest = Manifest::paper_baseline("trace");
    manifest.name = format!(
        "trace_{}_{}",
        protocol.compact().replace(':', "-"),
        network.cli_name()
    );
    manifest.network.kind = network;
    manifest.protocols = vec![protocol];
    manifest.seeds = Seeds {
        base: seed,
        count: 1,
    };
    manifest.trace = level;
    manifest.outputs.trace_artifacts = true;

    let run = scenario_run::execute_on(&Executor::from_env(), &manifest);
    if let Some((_, e)) = &run.limit_error {
        eprintln!("experiments trace: {e}");
        std::process::exit(ScenarioExit::LimitExceeded.code());
    }
    let (result, log) = run.results[0].as_ref().expect("cell completed");
    let log = log.as_ref().expect("trace level is on");
    println!(
        "traced {} on {:?} at {:?}: {} events ({} dropped)",
        result.protocol,
        network,
        level,
        log.events.len(),
        log.dropped
    );
    let outcome = scenario_run::finish(&manifest, &run, &dir).expect("write trace dir");
    for p in &outcome.written {
        println!("wrote {}", p.display());
    }
    std::process::exit(0);
}

/// Run one or more profiled schedules and write the self-observability
/// artifacts: `profile_<proto>.json` (the span/subsystem self-report),
/// `heartbeat_<proto>.jsonl` (one line per completed cell), and
/// `metrics_<proto>.json` (the merged trace metrics registry, which now
/// includes `trace.emitted` / `trace.sink_dropped`).
fn run_profile(args: &[String]) -> ! {
    let (protocol, network, dir, seed) = parse_run_args(args, "profile");
    let protocol = protocol.mode;
    let seeds = parse_flag_u64(args, "--seeds", 1);
    let level = match TraceLevel::from_env() {
        TraceLevel::Off => TraceLevel::Lifecycle,
        explicit => explicit,
    };
    let proto = match protocol {
        ProtocolMode::Http => "http",
        ProtocolMode::Spdy { .. } => "spdy",
    };
    let cells: Vec<(ProtocolMode, u64)> = (seed..seed + seeds).map(|s| (protocol, s)).collect();

    std::fs::create_dir_all(&dir).expect("create profile dir");
    let hb_path = dir.join(format!("heartbeat_{proto}.jsonl"));
    let heartbeat: Box<dyn Write + Send> =
        Box::new(std::fs::File::create(&hb_path).expect("create heartbeat file"));

    spdyier_prof::set_enabled(true);
    let alloc_before = spdyier_prof::global_counts();
    let sweep = profiled_cells_on(
        &Executor::from_env(),
        &cells,
        network,
        level,
        Some(heartbeat),
    );
    let alloc_delta = spdyier_prof::global_counts().since(alloc_before);

    let mut metrics = MetricsRegistry::new();
    let mut retained = 0u64;
    for (_, log) in &sweep.runs {
        metrics.merge(&log.metrics);
        retained += log.events.len() as u64;
    }
    let secs = sweep.wall_ms / 1e3;
    let report = spdyier_prof::SelfReport::assemble(
        format!("{proto} {} seeds={seeds}", args[1]),
        &sweep.profile,
        sweep.wall_ms,
        sweep.telemetry.visits,
        alloc_delta,
        sweep.telemetry.events,
        spdyier_prof::SinkReport {
            emitted: sweep.telemetry.events,
            retained,
            dropped: sweep.telemetry.trace_dropped,
            events_per_sec: if secs > 0.0 {
                sweep.telemetry.events as f64 / secs
            } else {
                0.0
            },
        },
    );
    spdyier_prof::set_enabled(false);
    let files = vec![
        DataFile {
            name: format!("profile_{proto}.json"),
            contents: report.to_json(),
        },
        metrics_file(proto, &metrics),
    ];
    let paths = write_to_dir(&files, &dir).expect("write profile dir");
    println!(
        "profiled {} cell(s) of {} on {:?} at {:?}: {:.0} ms, {} events ({:.0}/s), {:.0} allocs/visit",
        cells.len(),
        proto,
        network,
        level,
        sweep.wall_ms,
        sweep.telemetry.events,
        report.events_per_sec,
        report.allocs_per_visit,
    );
    for row in report.subsystems.iter().map(|(name, s)| {
        format!(
            "  {name:<10} {:>10.1} ms self  {:>12} allocs  {:>8} calls",
            s.self_ns as f64 / 1e6,
            s.allocs,
            s.calls
        )
    }) {
        println!("{row}");
    }
    println!("wrote {}", hb_path.display());
    for p in &paths {
        println!("wrote {}", p.display());
    }
    std::process::exit(0);
}

/// Run the paired sweep on one network and dump every `RunResult` as one
/// JSON line (HTTP then SPDY per seed). The output is byte-stable for a
/// given build, which makes it the reference artifact for the CI
/// byte-identity guard: dump before and after a data-plane change and
/// `cmp` the files. Routed through the scenario runner (a pre-baked
/// paired manifest), with a `.meta.json` schema sidecar next to the
/// dump.
fn run_paired(args: &[String]) -> ! {
    if args.len() < 2 {
        config_error("usage: experiments paired <3g|lte|wifi|3g-pinned> <FILE> [--seeds N]");
    }
    let network: NetworkSpec = args[0]
        .parse()
        .unwrap_or_else(|e| config_error(&format!("experiments paired: network: {e}")));
    let seeds = parse_flag_u64(args, "--seeds", ExpOpts::default().seeds);
    if seeds == 0 {
        config_error("experiments paired: --seeds: must be at least 1");
    }

    // The legacy paired sweep, re-expressed as a scenario manifest.
    let mut manifest = Manifest::paper_baseline("paired");
    manifest.name = format!("paired_{}", network.cli_name());
    manifest.network.kind = network;
    manifest.seeds = Seeds {
        base: 0,
        count: seeds,
    };
    manifest.tcp_traces = true;
    manifest.outputs.paired_dump = true;

    let run = scenario_run::execute_on(&Executor::from_env(), &manifest);
    if let Some((_, e)) = &run.limit_error {
        eprintln!("experiments paired: {e}");
        std::process::exit(ScenarioExit::LimitExceeded.code());
    }
    let out = scenario_run::paired_dump_string(&run);

    let path = std::path::PathBuf::from(&args[1]);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create dump dir");
        }
    }
    std::fs::write(&path, &out).expect("write paired dump");
    let dump_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "paired.jsonl".to_string());
    let keys = spdyier_core::contract::json_line_keys(out.lines().next().unwrap_or_default());
    let meta = spdyier_core::paired_meta_file(&dump_name, network.cli_name(), seeds, &keys);
    let meta_path = path.with_file_name(&meta.name);
    std::fs::write(&meta_path, &meta.contents).expect("write paired dump sidecar");
    println!("wrote {} ({} pairs)", path.display(), seeds);
    println!("wrote {}", meta_path.display());
    std::process::exit(0);
}

/// Parse the value following `--flag NAME` as a string; absent flag
/// yields `None`, present-but-valueless names the flag and exits 3.
fn parse_flag_str(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => config_error(&format!("{flag}: expected a value after the flag")),
    }
}

/// Write a causal outcome's artifacts and print the summary.
fn write_causal_outcome(outcome: spdyier_experiments::CausalOutcome, out_dir: &str) -> ! {
    match write_to_dir(&outcome.files, std::path::Path::new(out_dir)) {
        Ok(paths) => {
            for p in &paths {
                println!("wrote {}", p.display());
            }
            println!("{}", outcome.summary);
            std::process::exit(0);
        }
        Err(e) => config_error(&format!("--out {out_dir:?}: {e}")),
    }
}

/// `experiments explain <trace.jsonl|MANIFEST> [--cell FILTER] [--out DIR]`.
fn run_explain(args: &[String]) -> ! {
    let positional: Vec<&String> = positional_args(args, &["--cell", "--out"]);
    let [input] = positional[..] else {
        config_error(
            "usage: experiments explain <trace.jsonl|MANIFEST> [--cell FILTER] [--out DIR]",
        );
    };
    let cell = parse_flag_str(args, "--cell");
    let out = parse_flag_str(args, "--out").unwrap_or_else(|| "results/explain".into());
    match spdyier_experiments::causal_explain(std::path::Path::new(input), cell.as_deref()) {
        Ok(outcome) => write_causal_outcome(outcome, &out),
        Err(e) => config_error(&format!("experiments explain: {e}")),
    }
}

/// `experiments diff <a.jsonl> <b.jsonl> | <MANIFEST> --a F --b F [--out DIR]`.
fn run_diff(args: &[String]) -> ! {
    let positional = positional_args(args, &["--a", "--b", "--out"]);
    let a_filter = parse_flag_str(args, "--a");
    let b_filter = parse_flag_str(args, "--b");
    let out = parse_flag_str(args, "--out").unwrap_or_else(|| "results/diff".into());
    let result = match (&positional[..], &a_filter, &b_filter) {
        ([a, b], None, None) => spdyier_experiments::causal_diff(
            Some(std::path::Path::new(a.as_str())),
            Some(std::path::Path::new(b.as_str())),
            None,
            None,
            None,
        ),
        ([manifest], Some(a), Some(b)) => spdyier_experiments::causal_diff(
            None,
            None,
            Some(std::path::Path::new(manifest.as_str())),
            Some(a),
            Some(b),
        ),
        _ => config_error(
            "usage: experiments diff <a.jsonl> <b.jsonl> [--out DIR]\n\
             |      experiments diff <MANIFEST> --a FILTER --b FILTER [--out DIR]",
        ),
    };
    match result {
        Ok(outcome) => write_causal_outcome(outcome, &out),
        Err(e) => config_error(&format!("experiments diff: {e}")),
    }
}

/// The arguments that are not flags (or flag values) from `flags`.
fn positional_args<'a>(args: &'a [String], flags: &[&str]) -> Vec<&'a String> {
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if flags.contains(&args[i].as_str()) {
            i += 2;
            continue;
        }
        positional.push(&args[i]);
        i += 1;
    }
    positional
}

/// `experiments run <MANIFEST> [--out DIR] [--seeds N]`: the scenario
/// runner front-end.
fn run_scenario(args: &[String]) -> ! {
    let usage = "usage: experiments run <MANIFEST.(json|yaml)> [--out DIR] [--seeds N]";
    let mut manifest_path: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut seeds_override: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    config_error("experiments run: --out: expected a directory after the flag")
                }));
            }
            "--seeds" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| {
                    config_error("experiments run: --seeds: expected a number after the flag")
                });
                seeds_override = Some(raw.parse().unwrap_or_else(|_| {
                    config_error(&format!(
                        "experiments run: --seeds: expected an unsigned integer, got {raw:?}"
                    ))
                }));
            }
            other if manifest_path.is_none() => manifest_path = Some(other.to_string()),
            other => config_error(&format!(
                "experiments run: unexpected argument {other:?}\n{usage}"
            )),
        }
        i += 1;
    }
    let Some(manifest_path) = manifest_path else {
        config_error(usage);
    };
    let mut manifest = Manifest::from_file(std::path::Path::new(&manifest_path))
        .unwrap_or_else(|e| config_error(&format!("{manifest_path}: {e}")));
    if let Some(n) = seeds_override {
        if n == 0 {
            config_error("experiments run: --seeds: must be at least 1");
        }
        manifest.seeds.count = n;
    }
    let out_dir = out_dir.unwrap_or_else(|| format!("results/{}", manifest.name));
    match spdyier_experiments::run_manifest(&manifest, std::path::Path::new(&out_dir)) {
        Ok(outcome) => {
            for p in &outcome.written {
                println!("wrote {}", p.display());
            }
            println!("{}", outcome.summary);
            std::process::exit(outcome.exit.code());
        }
        Err(e) => config_error(&format!("experiments run: --out {out_dir:?}: {e}")),
    }
}

/// `experiments sweep <MANIFEST> --out DIR [--seeds N] [--stop-after K]`:
/// the checkpointing, resumable population-scale runner. Re-running the
/// same command against the same `--out` directory resumes from the
/// checkpoint store.
fn run_sweep_cmd(args: &[String]) -> ! {
    let usage =
        "usage: experiments sweep <MANIFEST.(json|yaml)> --out DIR [--seeds N] [--stop-after K]";
    let positional = positional_args(args, &["--out", "--seeds", "--stop-after"]);
    let [manifest_path] = positional[..] else {
        config_error(usage);
    };
    let Some(out_dir) = parse_flag_str(args, "--out") else {
        config_error(&format!(
            "experiments sweep: --out is required (the checkpoint store lives there)\n{usage}"
        ));
    };
    let mut manifest = Manifest::from_file(std::path::Path::new(manifest_path))
        .unwrap_or_else(|e| config_error(&format!("{manifest_path}: {e}")));
    if let Some(n) = parse_flag_str(args, "--seeds") {
        let n: u64 = n.parse().unwrap_or_else(|_| {
            config_error(&format!(
                "experiments sweep: --seeds: expected an unsigned integer, got {n:?}"
            ))
        });
        if n == 0 {
            config_error("experiments sweep: --seeds: must be at least 1");
        }
        manifest.seeds.count = n;
    }
    let stop_after = parse_flag_str(args, "--stop-after").map(|k| {
        k.parse().unwrap_or_else(|_| {
            config_error(&format!(
                "experiments sweep: --stop-after: expected an unsigned integer, got {k:?}"
            ))
        })
    });
    let opts = spdyier_experiments::SweepOptions { stop_after };
    let out_path = std::path::PathBuf::from(&out_dir);
    match spdyier_experiments::run_sweep(&manifest, &out_path, opts) {
        Ok(spdyier_experiments::SweepOutcome::Completed(outcome)) => {
            for p in &outcome.written {
                println!("wrote {}", p.display());
            }
            println!("{}", outcome.summary);
            std::process::exit(outcome.exit.code());
        }
        Ok(spdyier_experiments::SweepOutcome::Interrupted {
            checkpointed,
            total,
        }) => {
            println!(
                "sweep {}: stopped with {checkpointed}/{total} cell(s) checkpointed; \
                 re-run the same command to resume",
                manifest.name
            );
            std::process::exit(0);
        }
        Err(e) => config_error(&e.to_string()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <id|all> [--seeds N] [--json DIR]");
        eprintln!("       experiments run <MANIFEST.(json|yaml)> [--out DIR] [--seeds N]");
        eprintln!(
            "       experiments sweep <MANIFEST.(json|yaml)> --out DIR [--seeds N] [--stop-after K]"
        );
        eprintln!("       experiments export <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]");
        eprintln!("       experiments trace <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N]");
        eprintln!("       experiments paired <3g|lte|wifi|3g-pinned> <FILE> [--seeds N]");
        eprintln!("       experiments explain <trace.jsonl|MANIFEST> [--cell FILTER] [--out DIR]");
        eprintln!("       experiments diff <a.jsonl> <b.jsonl> [--out DIR]");
        eprintln!("       experiments diff <MANIFEST> --a FILTER --b FILTER [--out DIR]");
        eprintln!(
            "       experiments profile <http|spdy> <3g|lte|wifi|3g-pinned> <DIR> [--seed N] [--seeds N]"
        );
        eprintln!("ids: {}", ALL_EXPERIMENTS.join(" "));
        std::process::exit(ScenarioExit::ConfigError.code());
    }
    if args[0] == "run" {
        run_scenario(&args[1..]);
    }
    if args[0] == "sweep" {
        run_sweep_cmd(&args[1..]);
    }
    if args[0] == "export" {
        run_export(&args[1..]);
    }
    if args[0] == "trace" {
        run_trace(&args[1..]);
    }
    if args[0] == "profile" {
        run_profile(&args[1..]);
    }
    if args[0] == "paired" {
        run_paired(&args[1..]);
    }
    if args[0] == "explain" {
        run_explain(&args[1..]);
    }
    if args[0] == "diff" {
        run_diff(&args[1..]);
    }
    let mut opts = ExpOpts::default();
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                opts.seeds = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    config_error("--seeds: expected an unsigned integer after the flag")
                });
            }
            "--json" => {
                i += 1;
                json_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    config_error("--json: expected a directory after the flag")
                }));
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.iter().any(|x| x == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        let started = std::time::Instant::now();
        match run_by_id(id, opts) {
            Some(report) => {
                println!("{}", report.render());
                println!("[{} completed in {:.1?}]\n", id, started.elapsed());
                if let Some(dir) = &json_dir {
                    std::fs::create_dir_all(dir).expect("create json dir");
                    let path = format!("{dir}/{id}.json");
                    let mut f = std::fs::File::create(&path).expect("create json file");
                    let blob = serde_json::json!({
                        "id": report.id,
                        "title": report.title,
                        "paper_claim": report.paper_claim,
                        "data": report.data,
                    });
                    writeln!(
                        f,
                        "{}",
                        serde_json::to_string_pretty(&blob).expect("serialize")
                    )
                    .expect("write json");
                    eprintln!("wrote {path}");
                }
            }
            None => {
                config_error(&format!(
                    "unknown experiment id: {id}\nids: {}",
                    ALL_EXPERIMENTS.join(" ")
                ));
            }
        }
    }
}
