//! Mitigation experiments: Fig. 14 (keep the radio in DCH), Fig. 15
//! (`tcp_slow_start_after_idle`), Table 2 (Reno vs Cubic), and the §6
//! proposals (multiple connections / late binding, RTT reset after idle,
//! metrics-cache disabling).

use crate::{schedule_for_seed, ExpOpts, Report};
use serde_json::json;
use spdyier_core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode, RunResult};
use spdyier_sim::{Cdf, SimDuration};
use spdyier_tcp::CcAlgorithm;

fn run_with<F: Fn(&mut ExperimentConfig)>(
    protocol: ProtocolMode,
    network: NetworkKind,
    seed: u64,
    tweak: F,
) -> RunResult {
    let mut cfg = ExperimentConfig::paper_3g(protocol, seed)
        .with_network(network)
        .with_schedule(schedule_for_seed(seed));
    tweak(&mut cfg);
    run_experiment(cfg)
}

fn pooled_plts(runs: &[RunResult]) -> Vec<f64> {
    runs.iter().flat_map(|r| r.plts_ms()).collect()
}

fn mean_rtx(runs: &[RunResult]) -> f64 {
    runs.iter()
        .map(|r| r.total_retransmissions as f64)
        .sum::<f64>()
        / runs.len().max(1) as f64
}

/// Fig. 14: CDF of page load times with and without a background ping
/// keeping the device in DCH.
pub fn fig14(opts: ExpOpts) -> Report {
    let mut text = String::from("condition          P(load<8 s)   median (ms)   rtx/run\n");
    let mut data = Vec::new();
    let mut rtx_no_ping = [0.0f64; 2];
    let mut rtx_ping = [0.0f64; 2];
    for (pi, protocol) in [ProtocolMode::Http, ProtocolMode::spdy()]
        .into_iter()
        .enumerate()
    {
        for ping in [false, true] {
            let runs: Vec<RunResult> = (0..opts.seeds)
                .map(|s| {
                    run_with(protocol, NetworkKind::Umts3G, s, |cfg| {
                        cfg.keepalive_ping = ping.then(|| SimDuration::from_secs(3));
                    })
                })
                .collect();
            let plts = pooled_plts(&runs);
            let cdf = Cdf::from_samples(&plts);
            let under8 = cdf.fraction_at(8_000.0);
            let median = cdf.quantile(0.5).unwrap_or(0.0);
            let rtx = mean_rtx(&runs);
            if ping {
                rtx_ping[pi] = rtx;
            } else {
                rtx_no_ping[pi] = rtx;
            }
            text.push_str(&format!(
                "{:<6} {:<10}  {:>10.0}%   {:>10.0}   {:>7.0}\n",
                protocol.label(),
                if ping { "+ ping" } else { "no ping" },
                under8 * 100.0,
                median,
                rtx
            ));
            data.push(json!({
                "protocol": protocol.label(),
                "ping": ping,
                "cdf": cdf.points.iter().step_by((cdf.points.len()/50).max(1)).collect::<Vec<_>>(),
                "frac_under_8s": under8,
                "rtx_per_run": rtx,
            }));
        }
    }
    for (pi, label) in ["HTTP", "SPDY"].iter().enumerate() {
        let reduction = if rtx_no_ping[pi] > 0.0 {
            (1.0 - rtx_ping[pi] / rtx_no_ping[pi]) * 100.0
        } else {
            0.0
        };
        text.push_str(&format!(
            "{label}: pinning DCH removes {reduction:.0}% of retransmissions (paper: ~91% HTTP / ~96% SPDY)\n"
        ));
    }
    Report {
        id: "fig14",
        title: "Impact of the cellular RRC state machine (background ping)",
        paper_claim: ">80% of loads finish <8 s with pings vs 40–45% without; rtx drop ~91%/~96%",
        text,
        data: json!({ "conditions": data }),
    }
}

/// Fig. 15: relative PLT difference with `tcp_slow_start_after_idle`
/// disabled (negative = disabling helps).
pub fn fig15(opts: ExpOpts) -> Report {
    let mut text = String::from("site   HTTP Δms (off−on)   SPDY Δms (off−on)\n");
    let mut per_proto = Vec::new();
    for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
        let on: Vec<RunResult> = (0..opts.seeds)
            .map(|s| run_with(protocol, NetworkKind::Umts3G, s, |_| {}))
            .collect();
        let off: Vec<RunResult> = (0..opts.seeds)
            .map(|s| {
                run_with(protocol, NetworkKind::Umts3G, s, |cfg| {
                    cfg.tcp.slow_start_after_idle = false;
                })
            })
            .collect();
        let mut deltas = Vec::new();
        for site in 1..=20u32 {
            let mean = |runs: &[RunResult]| {
                let v: Vec<f64> = runs.iter().flat_map(|r| r.plts_for_site(site)).collect();
                spdyier_sim::stats::mean(&v)
            };
            deltas.push(mean(&off) - mean(&on));
        }
        per_proto.push(deltas);
    }
    let mut mixed = [0usize; 2];
    for (site, (h, s)) in per_proto[0].iter().zip(per_proto[1].iter()).enumerate() {
        text.push_str(&format!("{:>4}   {:>16.0}   {:>16.0}\n", site + 1, h, s));
        for (p, delta) in [h, s].into_iter().enumerate() {
            if *delta < 0.0 {
                mixed[p] += 1;
            }
        }
    }
    text.push_str(&format!(
        "\nsites helped by disabling: HTTP {}/20, SPDY {}/20 — benefits vary by site, no\nuniform winner (matches the paper's mixed result)\n",
        mixed[0], mixed[1]
    ));
    Report {
        id: "fig15",
        title: "Page load times with and without tcp_slow_start_after_idle",
        paper_claim: "benefits vary across websites; disabling risks inaccurate cwnd after idle",
        text,
        data: json!({ "http_delta_ms": per_proto[0], "spdy_delta_ms": per_proto[1] }),
    }
}

/// Table 2: HTTP and SPDY under TCP Reno vs TCP Cubic.
pub fn table2(opts: ExpOpts) -> Report {
    let mut text = String::from(
        "metric                     Reno/HTTP   Reno/SPDY   Cubic/HTTP   Cubic/SPDY\n",
    );
    let mut cells = Vec::new();
    for cc in [CcAlgorithm::Reno, CcAlgorithm::Cubic] {
        for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
            let runs: Vec<RunResult> = (0..opts.seeds)
                .map(|s| {
                    run_with(protocol, NetworkKind::Umts3G, s, |cfg| {
                        cfg.tcp.cc = cc;
                        cfg.record_traces = true;
                    })
                })
                .collect();
            let plts = pooled_plts(&runs);
            let plt = spdyier_sim::stats::mean(&plts);
            let thr = runs.iter().map(|r| r.mean_load_throughput()).sum::<f64>()
                / runs.len() as f64
                / 1024.0;
            // Max per-second delivery rate (KBps).
            let max_thr = runs
                .iter()
                .map(|r| {
                    r.client_downlink_bytes
                        .bin_sum(
                            SimDuration::from_secs(1),
                            spdyier_sim::SimTime::from_secs(1200),
                        )
                        .into_iter()
                        .fold(0.0, f64::max)
                })
                .fold(0.0, f64::max)
                / 1024.0;
            // cwnd stats from traces (segments).
            let mut cwnd_means = Vec::new();
            let mut cwnd_max: f64 = 0.0;
            for r in &runs {
                for ct in &r.conn_traces {
                    if let Some(tr) = &ct.trace {
                        if !tr.cwnd_segments.is_empty() {
                            cwnd_means.push(tr.cwnd_segments.mean_value());
                            cwnd_max = cwnd_max.max(tr.cwnd_segments.max_value().unwrap_or(0.0));
                        }
                    }
                }
            }
            let cwnd_mean = spdyier_sim::stats::mean(&cwnd_means);
            cells.push(json!({
                "cc": format!("{cc:?}"),
                "protocol": protocol.label(),
                "avg_plt_ms": plt,
                "avg_throughput_kbps": thr,
                "max_throughput_kbps": max_thr,
                "avg_cwnd_segments": cwnd_mean,
                "max_cwnd_segments": cwnd_max,
            }));
        }
    }
    let get = |i: usize, k: &str| cells[i][k].as_f64().unwrap_or(0.0);
    for (label, key) in [
        ("Avg. page load (ms)", "avg_plt_ms"),
        ("Avg. throughput (KBps)", "avg_throughput_kbps"),
        ("Max. throughput (KBps)", "max_throughput_kbps"),
        ("Avg. cwnd (segments)", "avg_cwnd_segments"),
        ("Max. cwnd (segments)", "max_cwnd_segments"),
    ] {
        text.push_str(&format!(
            "{:<26} {:>9.1} {:>11.1} {:>12.1} {:>12.1}\n",
            label,
            get(0, key),
            get(1, key),
            get(2, key),
            get(3, key)
        ));
    }
    text.push_str(
        "\npaper: Cubic best avg PLT; SPDY+Cubic grows the largest windows (max cwnd 197 vs\nReno's 48); little overall difference between variants.\n",
    );
    Report {
        id: "table2",
        title: "HTTP and SPDY with different TCP variants",
        paper_claim: "little distinguishes Reno and Cubic; Cubic slightly better PLT; SPDY+Cubic reaches much larger cwnd",
        text,
        data: json!({ "cells": cells }),
    }
}

/// §6.1: multiple SPDY connections and late binding.
pub fn multiconn(opts: ExpOpts) -> Report {
    let variants: [(&str, ProtocolMode); 4] = [
        ("HTTP", ProtocolMode::Http),
        ("SPDY-1", ProtocolMode::spdy()),
        (
            "SPDY-20",
            ProtocolMode::Spdy {
                connections: 20,
                late_binding: false,
            },
        ),
        (
            "SPDY-20-late",
            ProtocolMode::Spdy {
                connections: 20,
                late_binding: true,
            },
        ),
    ];
    let mut text = String::from("variant         mean PLT (ms)   rtx/run   completed\n");
    let mut rows = Vec::new();
    for (name, protocol) in variants {
        let runs: Vec<RunResult> = (0..opts.seeds)
            .map(|s| run_with(protocol, NetworkKind::Umts3G, s, |_| {}))
            .collect();
        let plts: Vec<f64> = runs
            .iter()
            .flat_map(|r| r.visits.iter().map(|v| v.plt_ms))
            .collect();
        let plt = spdyier_sim::stats::mean(&plts);
        let rtx = mean_rtx(&runs);
        let completion = runs.iter().map(|r| r.completion_rate()).sum::<f64>() / runs.len() as f64;
        text.push_str(&format!(
            "{:<15} {:>12.0}   {:>7.0}   {:>8.0}%\n",
            name,
            plt,
            rtx,
            completion * 100.0
        ));
        rows.push(
            json!({ "variant": name, "mean_plt_ms": plt, "rtx": rtx, "completion": completion }),
        );
    }
    text.push_str(
        "\npaper §6.1: spreading SPDY over 20 connections does NOT help, because requests\nbind to connections up front; late binding of responses to transmittable\nconnections recovers much of the loss.\n",
    );
    Report {
        id: "multiconn",
        title: "Multiple SPDY connections and late binding (§6.1)",
        paper_claim: "20 SPDY connections do not improve load times; late binding of responses is what is required",
        text,
        data: json!({ "variants": rows }),
    }
}

/// §6.2.1: resetting the RTT estimate after idle.
pub fn rttreset(opts: ExpOpts) -> Report {
    let mut text =
        String::from("protocol  rtt-reset  mean PLT (ms)   rtx/run   promotions-correlated rtx\n");
    let mut rows = Vec::new();
    for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
        for reset in [false, true] {
            let runs: Vec<RunResult> = (0..opts.seeds)
                .map(|s| {
                    run_with(protocol, NetworkKind::Umts3G, s, |cfg| {
                        cfg.tcp.reset_rtt_after_idle = reset;
                    })
                })
                .collect();
            let plts = pooled_plts(&runs);
            let plt = spdyier_sim::stats::mean(&plts);
            let rtx = mean_rtx(&runs);
            let correlated = runs
                .iter()
                .map(|r| r.promotion_correlated_rtx(SimDuration::from_secs(1)) as f64)
                .sum::<f64>()
                / runs.len() as f64;
            text.push_str(&format!(
                "{:<8}  {:<9}  {:>12.0}   {:>7.0}   {:>10.0}\n",
                protocol.label(),
                if reset { "on" } else { "off" },
                plt,
                rtx,
                correlated
            ));
            rows.push(json!({
                "protocol": protocol.label(),
                "reset": reset,
                "mean_plt_ms": plt,
                "rtx": rtx,
                "promotion_correlated": correlated,
            }));
        }
    }
    text.push_str(
        "\npaper §6.2.1: resetting the RTT estimate to its initial (multi-second) value after\nidle makes the RTO exceed the promotion delay, eliminating spurious timeouts and\nletting cwnd grow promptly.\n",
    );
    Report {
        id: "rttreset",
        title: "Resetting the RTT estimate after idle (§6.2.1)",
        paper_claim: "resetting the RTT estimate avoids spurious timeouts after promotions and reduces page load times",
        text,
        data: json!({ "rows": rows }),
    }
}

/// §6.2.4: the TCP metrics cache.
pub fn metricscache(opts: ExpOpts) -> Report {
    let mut text = String::from("protocol  cache   mean PLT (ms)   median PLT (ms)\n");
    let mut rows = Vec::new();
    let mut medians = [[0.0f64; 2]; 2];
    for (pi, protocol) in [ProtocolMode::Http, ProtocolMode::spdy()]
        .into_iter()
        .enumerate()
    {
        for (ci, cache) in [true, false].into_iter().enumerate() {
            let runs: Vec<RunResult> = (0..opts.seeds)
                .map(|s| {
                    run_with(protocol, NetworkKind::Umts3G, s, |cfg| {
                        cfg.cache_metrics = cache;
                    })
                })
                .collect();
            let plts = pooled_plts(&runs);
            let mean = spdyier_sim::stats::mean(&plts);
            let median = spdyier_sim::stats::percentile(&plts, 50.0);
            medians[pi][ci] = median;
            text.push_str(&format!(
                "{:<8}  {:<5}   {:>12.0}   {:>14.0}\n",
                protocol.label(),
                if cache { "on" } else { "off" },
                mean,
                median
            ));
            rows.push(json!({
                "protocol": protocol.label(),
                "cache": cache,
                "mean_plt_ms": mean,
                "median_plt_ms": median,
            }));
        }
    }
    for (pi, label) in ["HTTP", "SPDY"].iter().enumerate() {
        let gain = if medians[pi][0] > 0.0 {
            (1.0 - medians[pi][1] / medians[pi][0]) * 100.0
        } else {
            0.0
        };
        text.push_str(&format!(
            "{label}: disabling the cache changes the median by {gain:.0}% (paper: ~35% improvement at the median)\n"
        ));
    }
    Report {
        id: "metricscache",
        title: "Caching TCP statistics across connections (§6.2.4)",
        paper_claim:
            "disabling the per-destination metrics cache improved ~50% of runs by about 35%",
        text,
        data: json!({ "rows": rows }),
    }
}
