//! # spdyier-experiments
//!
//! One runner per table/figure of *"Towards a SPDY'ier Mobile Web?"*.
//! Each runner executes the testbed at the paper's operating point and
//! prints the same rows/series the paper reports, plus a JSON blob for
//! downstream plotting. The `experiments` binary dispatches by id
//! (`fig3`, `table2`, `rttreset`, … or `all`).

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod ascii;
pub mod causal_cli;
pub mod exec;
pub mod extensions;
pub mod mitigations;
pub mod objects;
pub mod plt;
pub mod profiling;
pub mod proxy_bottleneck;
pub mod scenario_run;
pub mod sweep;
pub mod table1;
pub mod tcp_dynamics;

use serde_json::Value;
use spdyier_core::{
    run_experiment, run_experiment_traced, ExperimentConfig, FlightLog, NetworkKind, ProtocolMode,
    RunResult, TraceLevel,
};
use spdyier_workload::VisitSchedule;

pub use causal_cli::{diff as causal_diff, explain as causal_explain, CausalOutcome};
pub use exec::Executor;
pub use profiling::{paired_cells, profiled_cells_on, ProfiledSweep};
pub use scenario_run::{
    execute_folded_on, fold_cell, run_manifest, run_manifest_on, FoldedCell, FoldedRun,
    ScenarioOutcome, ScenarioRun,
};
pub use sweep::{run_sweep, run_sweep_on, SweepOptions, SweepOutcome};

/// A rendered experiment result.
#[derive(Debug)]
pub struct Report {
    /// Short id (`fig3`, `table2`, ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// What the paper reports for this artifact.
    pub paper_claim: &'static str,
    /// The regenerated rows/series as text.
    pub text: String,
    /// Machine-readable series for plotting.
    pub data: Value,
}

impl Report {
    /// Full text rendering (header + claim + body).
    pub fn render(&self) -> String {
        format!(
            "== {} — {} ==\npaper: {}\n\n{}\n",
            self.id, self.title, self.paper_claim, self.text
        )
    }
}

/// How many independent runs (seeds) an experiment uses.
#[derive(Debug, Clone, Copy)]
pub struct ExpOpts {
    /// Number of seeds.
    pub seeds: u64,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts { seeds: 3 }
    }
}

impl ExpOpts {
    /// A fast single-seed configuration (CI / smoke).
    pub fn quick() -> ExpOpts {
        ExpOpts { seeds: 1 }
    }
}

/// The shared schedule for seed `s` (HTTP and SPDY see the same order, as
/// in the paper's alternating methodology). Delegates to the scenario
/// crate so manifests and legacy runners share one formula.
pub fn schedule_for_seed(s: u64) -> VisitSchedule {
    spdyier_scenario::table1_schedule_for_seed(s)
}

/// Run the full 20-site schedule for one protocol on one network.
pub fn run_schedule(
    protocol: ProtocolMode,
    network: NetworkKind,
    seed: u64,
    traces: bool,
) -> RunResult {
    let mut cfg = ExperimentConfig::paper_3g(protocol, seed)
        .with_network(network)
        .with_schedule(schedule_for_seed(seed));
    cfg.record_traces = traces;
    run_experiment(cfg)
}

/// [`run_schedule`] with the flight recorder on at `level`, returning
/// the run and its [`FlightLog`].
pub fn run_schedule_traced(
    protocol: ProtocolMode,
    network: NetworkKind,
    seed: u64,
    level: TraceLevel,
) -> (RunResult, FlightLog) {
    let cfg = ExperimentConfig::paper_3g(protocol, seed)
        .with_network(network)
        .with_schedule(schedule_for_seed(seed))
        .with_trace_level(level);
    run_experiment_traced(cfg)
}

/// Paired traced HTTP/SPDY runs on an explicit executor: one (run, log)
/// pair per seed, HTTP first. Fan-out matches [`paired_runs_on`], so
/// the flight logs are byte-identical at any pool width.
pub fn paired_runs_traced_on(
    exec: &Executor,
    network: NetworkKind,
    opts: ExpOpts,
    level: TraceLevel,
) -> Vec<((RunResult, FlightLog), (RunResult, FlightLog))> {
    let n = (opts.seeds as usize) * 2;
    let mut flat = exec.run(n, |i| {
        let s = (i / 2) as u64;
        let protocol = if i % 2 == 0 {
            ProtocolMode::Http
        } else {
            ProtocolMode::spdy()
        };
        run_schedule_traced(protocol, network, s, level)
    });
    let mut pairs = Vec::with_capacity(opts.seeds as usize);
    while flat.len() >= 2 {
        let spdy = flat.pop().expect("even job count");
        let http = flat.pop().expect("even job count");
        pairs.push((http, spdy));
    }
    pairs.reverse();
    pairs
}

/// Paired HTTP/SPDY runs over identical schedules, one pair per seed.
///
/// Runs fan out across an [`Executor`] sized by `SPDYIER_JOBS` (or the
/// machine's parallelism); each (seed, protocol) run is independent and
/// deterministic, so the output is byte-identical to a serial sweep.
pub fn paired_runs(
    network: NetworkKind,
    opts: ExpOpts,
    traces: bool,
) -> Vec<(RunResult, RunResult)> {
    paired_runs_on(&Executor::from_env(), network, opts, traces)
}

/// [`paired_runs`] on an explicit executor (tests pin the pool width).
pub fn paired_runs_on(
    exec: &Executor,
    network: NetworkKind,
    opts: ExpOpts,
    traces: bool,
) -> Vec<(RunResult, RunResult)> {
    // Flatten to 2 jobs per seed: even indices HTTP, odd indices SPDY.
    let n = (opts.seeds as usize) * 2;
    let mut flat = exec.run(n, |i| {
        let s = (i / 2) as u64;
        let protocol = if i % 2 == 0 {
            ProtocolMode::Http
        } else {
            ProtocolMode::spdy()
        };
        run_schedule(protocol, network, s, traces)
    });
    let mut pairs = Vec::with_capacity(opts.seeds as usize);
    while flat.len() >= 2 {
        let spdy = flat.pop().expect("even job count");
        let http = flat.pop().expect("even job count");
        pairs.push((http, spdy));
    }
    pairs.reverse();
    pairs
}

/// Per-site PLT samples (ms) pooled across runs.
pub fn plts_by_site(runs: &[&RunResult]) -> Vec<(u32, Vec<f64>)> {
    (1..=20u32)
        .map(|site| {
            let samples: Vec<f64> = runs.iter().flat_map(|r| r.plts_for_site(site)).collect();
            (site, samples)
        })
        .collect()
}

/// All experiment ids in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table2",
    "multiconn",
    "rttreset",
    "metricscache",
    "pipelining",
    "promosweep",
    "energy",
];

/// Dispatch an experiment by id.
pub fn run_by_id(id: &str, opts: ExpOpts) -> Option<Report> {
    Some(match id {
        "table1" => table1::run(opts),
        "fig3" => plt::fig3(opts),
        "fig4" => plt::fig4(opts),
        "fig5" => objects::fig5(opts),
        "fig6" => objects::fig6(opts),
        "fig7" => objects::fig7(opts),
        "fig8" => proxy_bottleneck::fig8(opts),
        "fig9" => proxy_bottleneck::fig9(opts),
        "fig10" => proxy_bottleneck::fig10(opts),
        "fig11" => tcp_dynamics::fig11(opts),
        "fig12" => tcp_dynamics::fig12(opts),
        "fig13" => tcp_dynamics::fig13(opts),
        "fig14" => mitigations::fig14(opts),
        "fig15" => mitigations::fig15(opts),
        "fig16" => plt::fig16(opts),
        "fig17" => tcp_dynamics::fig17(opts),
        "table2" => mitigations::table2(opts),
        "multiconn" => mitigations::multiconn(opts),
        "rttreset" => mitigations::rttreset(opts),
        "metricscache" => mitigations::metricscache(opts),
        "pipelining" => extensions::pipelining(opts),
        "promosweep" => extensions::promo_sweep(opts),
        "energy" => extensions::energy(opts),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_reproducible() {
        assert_eq!(schedule_for_seed(1).order, schedule_for_seed(1).order);
        assert_ne!(schedule_for_seed(1).order, schedule_for_seed(2).order);
    }

    #[test]
    fn all_ids_dispatch() {
        // Only check that ids are known; running them is the bench suite's
        // job. The unknown id must return None.
        assert!(run_by_id("not-an-experiment", ExpOpts::quick()).is_none());
    }

    #[test]
    fn cheap_experiments_produce_reports() {
        // The sub-second experiments run end to end in tests.
        for id in ["table1", "fig7"] {
            let report = run_by_id(id, ExpOpts::quick()).expect("known id");
            assert_eq!(report.id, id);
            assert!(!report.text.is_empty());
            assert!(report.render().contains(report.title));
            assert!(report.data.is_object() || report.data.is_array());
        }
    }

    #[test]
    fn paired_runs_share_schedules() {
        let pairs = paired_runs(NetworkKind::Wifi, ExpOpts::quick(), false);
        assert_eq!(pairs.len(), 1);
        let (h, s) = &pairs[0];
        let h_sites: Vec<u32> = h.visits.iter().map(|v| v.site).collect();
        let s_sites: Vec<u32> = s.visits.iter().map(|v| v.site).collect();
        assert_eq!(h_sites, s_sites, "both protocols visit the same order");
    }
}
