//! The proxy-bottleneck analyses: Fig. 8 (proxy object timelines), Fig. 9
//! (per-second transfer), Fig. 10 (bytes in flight).

use crate::{paired_runs, run_schedule, ExpOpts, Report};
use serde_json::json;
use spdyier_core::{NetworkKind, ProtocolMode};
use spdyier_sim::{SimDuration, SimTime};

/// Fig. 8: the sequence of steps at the proxy for a SPDY run — origin wait
/// (black), origin download (cyan), transfer to client (red).
pub fn fig8(opts: ExpOpts) -> Report {
    let _ = opts;
    let run = run_schedule(ProtocolMode::spdy(), NetworkKind::Umts3G, 0, false);
    let mut waits = Vec::new();
    let mut downloads = Vec::new();
    let mut transfers = Vec::new();
    for rec in &run.proxy_records {
        if let Some(w) = rec.origin_wait() {
            waits.push(w.as_secs_f64() * 1e3);
        }
        if let Some(d) = rec.origin_download() {
            downloads.push(d.as_secs_f64() * 1e3);
        }
        if let Some(t) = rec.client_transfer() {
            transfers.push(t.as_secs_f64() * 1e3);
        }
    }
    let stats = |v: &[f64]| {
        (
            spdyier_sim::stats::mean(v),
            v.iter().cloned().fold(0.0, f64::max),
        )
    };
    let (w_mean, w_max) = stats(&waits);
    let (d_mean, d_max) = stats(&downloads);
    let (t_mean, t_max) = stats(&transfers);
    let text = format!(
        "objects observed at proxy: {}\n\
         origin wait      (req → first byte): mean {:>7.1} ms, max {:>8.0} ms   (paper: 14 ms avg, 46 ms max)\n\
         origin download  (first → last byte): mean {:>6.1} ms, max {:>8.0} ms   (paper: ~4 ms avg)\n\
         client transfer  (done → delivered): mean {:>7.1} ms, max {:>8.0} ms   (paper: dominates — the proxy queues)\n\n\
         transfer-to-client exceeds the origin leg by {:.0}x on average: the\n\
         server↔proxy link is NOT the bottleneck; responses queue at the proxy\n\
         because the cellular downlink drains slowly.\n",
        run.proxy_records.len(),
        w_mean, w_max, d_mean, d_max, t_mean, t_max,
        if w_mean + d_mean > 0.0 { t_mean / (w_mean + d_mean) } else { 0.0 },
    );
    Report {
        id: "fig8",
        title: "Queueing delay at the proxy (SPDY)",
        paper_claim: "origin first byte 14 ms avg / 46 ms max, download ~4 ms; transfer to the client dominates",
        text,
        data: json!({
            "origin_wait_ms": { "mean": w_mean, "max": w_max },
            "origin_download_ms": { "mean": d_mean, "max": d_max },
            "client_transfer_ms": { "mean": t_mean, "max": t_max },
        }),
    }
}

/// Fig. 9: average bytes delivered to the device per second, aligned on
/// visit starts and averaged across the run.
pub fn fig9(opts: ExpOpts) -> Report {
    let pairs = paired_runs(NetworkKind::Umts3G, opts, false);
    let horizon = SimTime::from_secs(20 * 60);
    let bin = SimDuration::from_secs(1);
    let avg_bins = |runs: Vec<&spdyier_core::RunResult>| -> Vec<f64> {
        let mut acc = vec![0.0; 20 * 60];
        for r in &runs {
            for (i, v) in r
                .client_downlink_bytes
                .bin_sum(bin, horizon)
                .iter()
                .enumerate()
            {
                acc[i] += v / runs.len() as f64;
            }
        }
        acc
    };
    let h_bins = avg_bins(pairs.iter().map(|(h, _)| h).collect());
    let s_bins = avg_bins(pairs.iter().map(|(_, s)| s).collect());
    // Align on visit starts: fold the 20 minutes into one 60 s window.
    let fold = |bins: &[f64]| -> Vec<f64> {
        let mut window = vec![0.0; 60];
        for (i, v) in bins.iter().enumerate() {
            window[i % 60] += v / 20.0;
        }
        window
    };
    let h_window = fold(&h_bins);
    let s_window = fold(&s_bins);
    let mut text = String::from("sec-into-visit   HTTP (KB/s)   SPDY (KB/s)\n");
    for i in 0..15 {
        text.push_str(&format!(
            "{:>13}   {:>10.1}   {:>10.1}\n",
            i,
            h_window[i] / 1024.0,
            s_window[i] / 1024.0
        ));
    }
    let h_peak = h_window.iter().cloned().fold(0.0, f64::max) / 1024.0;
    let s_peak = s_window.iter().cloned().fold(0.0, f64::max) / 1024.0;
    text.push_str(&format!(
        "\npeak per-second transfer: HTTP {:.0} KB/s vs SPDY {:.0} KB/s ({})\n",
        h_peak,
        s_peak,
        if h_peak >= s_peak {
            "HTTP transfers more per second, as the paper observed"
        } else {
            "SPDY peaks higher here"
        }
    ));
    Report {
        id: "fig9",
        title: "Average data transferred to the device per second",
        paper_claim: "HTTP achieves higher per-second transfers than SPDY, sometimes 2x",
        text,
        data: json!({ "http_window_bytes": h_window, "spdy_window_bytes": s_window }),
    }
}

/// Fig. 10: unacknowledged bytes in flight over one run, plus per-visit
/// zooms showing that whoever holds more bytes in flight loads faster.
pub fn fig10(opts: ExpOpts) -> Report {
    let _ = opts;
    let http = run_schedule(ProtocolMode::Http, NetworkKind::Umts3G, 0, false);
    let spdy = run_schedule(ProtocolMode::spdy(), NetworkKind::Umts3G, 0, false);
    let horizon = SimTime::from_secs(20 * 60);
    let bin = SimDuration::from_millis(500);
    let h_series = http.inflight_bytes.bin_last(bin, horizon, 0.0);
    let s_series = spdy.inflight_bytes.bin_last(bin, horizon, 0.0);
    let mut text =
        String::from("visit  HTTP max-inflight (KB)  SPDY max-inflight (KB)  faster PLT\n");
    let mut rows = Vec::new();
    for visit in 0..20usize {
        let lo = visit * 120;
        let hi = (lo + 120).min(h_series.len());
        let h_max = h_series[lo..hi].iter().cloned().fold(0.0, f64::max) / 1024.0;
        let s_max = s_series[lo..hi].iter().cloned().fold(0.0, f64::max) / 1024.0;
        let (h_plt, s_plt) = (
            http.visits.get(visit).map(|v| v.plt_ms).unwrap_or(f64::NAN),
            spdy.visits.get(visit).map(|v| v.plt_ms).unwrap_or(f64::NAN),
        );
        let faster = if h_plt < s_plt { "HTTP" } else { "SPDY" };
        text.push_str(&format!(
            "{:>5}  {:>21.0}  {:>21.0}  {}\n",
            visit + 1,
            h_max,
            s_max,
            faster
        ));
        rows.push(json!({
            "visit": visit + 1,
            "http_max_inflight_kb": h_max,
            "spdy_max_inflight_kb": s_max,
            "http_plt_ms": h_plt,
            "spdy_plt_ms": s_plt,
        }));
    }
    // Correlation check: does more in-flight mean faster?
    let consistent = rows
        .iter()
        .filter(|r| {
            let h_in = r["http_max_inflight_kb"].as_f64().unwrap();
            let s_in = r["spdy_max_inflight_kb"].as_f64().unwrap();
            let h_plt = r["http_plt_ms"].as_f64().unwrap();
            let s_plt = r["spdy_plt_ms"].as_f64().unwrap();
            (h_in > s_in) == (h_plt < s_plt)
        })
        .count();
    text.push_str(&format!(
        "\nvisits where the protocol with more bytes in flight also loaded faster: {consistent}/20\n"
    ));
    Report {
        id: "fig10",
        title: "Unacknowledged bytes in flight",
        paper_claim: "whenever outstanding bytes are higher, page load times are lower; SPDY's growth is often slow",
        text,
        data: json!({ "visits": rows }),
    }
}
