//! A scoped-thread parallel executor for experiment sweeps.
//!
//! Every run of the testbed is an independent, deterministic function of
//! its [`ExperimentConfig`](spdyier_core::ExperimentConfig) — no run
//! shares state with any other — so seed sweeps and HTTP/SPDY pairs are
//! embarrassingly parallel. [`Executor::run`] fans a job list across a
//! fixed pool of `std::thread::scope` workers (no extra dependencies, no
//! work stealing): workers claim job *indices* from a shared atomic
//! counter and write each output into the slot addressed by its index, so
//! the returned `Vec` is in job order regardless of which worker ran
//! what, or when. Combined with the testbed's determinism this makes the
//! parallel sweep's output **byte-identical** to the serial sweep's.
//!
//! The pool width comes from the `SPDYIER_JOBS` environment variable when
//! set (a positive integer; `1` forces the serial path), otherwise from
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width scoped-thread pool for independent jobs.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Executor {
        Executor { jobs: jobs.max(1) }
    }

    /// An executor sized by `SPDYIER_JOBS` (when set to a positive
    /// integer) or the machine's available parallelism.
    pub fn from_env() -> Executor {
        let jobs = std::env::var("SPDYIER_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Executor::new(jobs)
    }

    /// The pool width.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluate `f(0..n)` and return the outputs in index order.
    ///
    /// With one worker (or one job) this runs serially on the calling
    /// thread. Otherwise workers race on an atomic counter for the next
    /// index; outputs land in index-addressed slots, so ordering — and
    /// therefore any serialization of the result — matches the serial
    /// path byte for byte.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_observed(n, f, |_, _, _| {})
    }

    /// [`Executor::run`] plus a completion observer: after each job
    /// finishes, `observe(job, worker, &output)` runs **on the worker
    /// thread that produced it**, before the output lands in its slot.
    ///
    /// This is the hook sweep telemetry rides on — the observer sees
    /// completion order (not job order) and the worker index, which is
    /// exactly what a heartbeat line reports. The observer must not
    /// affect the outputs (it gets a shared reference), so the ordering
    /// guarantee of [`Executor::run`] is undisturbed.
    pub fn run_observed<T, F, O>(&self, n: usize, f: F, observe: O) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        O: Fn(usize, usize, &T) + Sync,
    {
        self.run_folded(n, f, |job, worker, out| {
            observe(job, worker, &out);
            out
        })
    }

    /// Map-then-reduce per job: evaluate `f(i)` and immediately reduce
    /// its output with `fold(job, worker, raw)` **on the worker thread
    /// that produced it**, storing only the reduced value.
    ///
    /// This is the streaming primitive population-scale sweeps fold
    /// through: the raw output (a full `RunResult`, O(visits) big) is
    /// consumed by value and dropped before the next job starts, so the
    /// sweep retains O(jobs) raw results at any instant and O(n) only
    /// of the *reduced* accumulators. Reduced outputs land in
    /// index-addressed slots, so — exactly like [`Executor::run`] — the
    /// returned `Vec` is in job order and byte-identical at any pool
    /// width. `fold` observes completion order and the worker index,
    /// which makes it the natural place to checkpoint and heartbeat.
    pub fn run_folded<T, R, F, G>(&self, n: usize, f: F, fold: G) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize) -> T + Sync,
        G: Fn(usize, usize, T) -> R + Sync,
    {
        if self.jobs == 1 || n <= 1 {
            return (0..n).map(|i| fold(i, 0, f(i))).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for worker in 0..self.jobs.min(n) {
                let fold = &fold;
                let f = &f;
                let slots = &slots;
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = fold(i, worker, f(i));
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker panicked before filling its slot")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial = Executor::new(1).run(17, |i| i * i);
        let parallel = Executor::new(4).run(17, |i| i * i);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn output_is_in_job_order() {
        let out = Executor::new(8).run(100, |i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Executor::new(0).jobs(), 1);
        assert_eq!(Executor::new(0).run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(Executor::new(16).run(2, |i| i + 1), vec![1, 2]);
    }

    #[test]
    fn run_folded_reduces_worker_side_in_job_order() {
        // The raw value is moved into the reducer (ownership proves the
        // executor cannot retain it), and only the reduction survives.
        for workers in [1, 4] {
            let out = Executor::new(workers).run_folded(
                40,
                |i| vec![i; 1000], // the "big" per-job output
                |job, worker, raw: Vec<usize>| {
                    assert!(worker < 4);
                    assert_eq!(raw.len(), 1000);
                    assert_eq!(raw[0], job);
                    raw.len() * job // the small reduced value
                },
            );
            assert_eq!(out, (0..40).map(|i| i * 1000).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_folded_serial_and_parallel_are_identical() {
        let serial =
            Executor::new(1).run_folded(23, |i| i as u64 * 3, |job, _, raw| raw + job as u64);
        let parallel =
            Executor::new(6).run_folded(23, |i| i as u64 * 3, |job, _, raw| raw + job as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn observer_sees_every_job_exactly_once() {
        use std::sync::Mutex;
        for workers in [1, 4] {
            let seen = Mutex::new(vec![0u32; 50]);
            let out = Executor::new(workers).run_observed(
                50,
                |i| i * 2,
                |job, worker, &out| {
                    assert_eq!(out, job * 2, "observer gets the job's own output");
                    assert!(worker < 4);
                    seen.lock().unwrap()[job] += 1;
                },
            );
            assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
            assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        }
    }
}
