//! Terminal rendering of the regenerated figures: grouped bars for the
//! per-site comparisons and step traces for the congestion-window plots —
//! so `experiments fig3` shows a *figure*, not only a table.

/// Render paired horizontal bars (e.g. HTTP vs SPDY per site).
///
/// Each row prints two bars scaled to the global maximum, labelled with
/// their values.
pub fn paired_bars(
    rows: &[(String, f64, f64)],
    label_a: &str,
    label_b: &str,
    width: usize,
) -> String {
    let max = rows
        .iter()
        .flat_map(|(_, a, b)| [*a, *b])
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let mut out = String::new();
    for (name, a, b) in rows {
        let bar = |v: f64| "█".repeat(((v / max) * width as f64).round() as usize);
        out.push_str(&format!(
            "{name:>8} {label_a:>5} |{:<width$}| {a:>8.0}\n",
            bar(*a)
        ));
        out.push_str(&format!(
            "{:>8} {label_b:>5} |{:<width$}| {b:>8.0}\n",
            "",
            bar(*b)
        ));
    }
    out
}

/// Render a step trace (e.g. cwnd over time) as a compact height-banded
/// chart: one output row per band, one column per sample.
pub fn step_trace(samples: &[f64], height: usize, x_label: &str, y_label: &str) -> String {
    if samples.is_empty() || height == 0 {
        return String::new();
    }
    let max = samples.iter().cloned().fold(0.0_f64, f64::max).max(1e-9);
    let mut out = String::new();
    for band in (1..=height).rev() {
        let threshold = max * band as f64 / height as f64;
        let prev_threshold = max * (band - 1) as f64 / height as f64;
        let row: String = samples
            .iter()
            .map(|&v| {
                if v >= threshold {
                    '█'
                } else if v > prev_threshold {
                    '▄'
                } else {
                    ' '
                }
            })
            .collect();
        let tick = if band == height {
            format!("{max:>7.0}")
        } else if band == 1 {
            format!("{:>7.0}", max / height as f64)
        } else {
            "       ".to_string()
        };
        out.push_str(&format!("{tick} |{row}|\n"));
    }
    out.push_str(&format!(
        "{:>7} +{}+\n{:>9}{} → {}\n",
        y_label,
        "-".repeat(samples.len()),
        "",
        x_label,
        "end"
    ));
    out
}

/// Mark discrete events (e.g. retransmissions) on an axis of `len`
/// columns covering `[0, span)`.
pub fn event_axis(events_at: &[f64], span: f64, len: usize, label: &str) -> String {
    let mut row = vec![' '; len];
    for &at in events_at {
        if at >= 0.0 && at < span {
            let idx = ((at / span) * len as f64) as usize;
            row[idx.min(len - 1)] = '×';
        }
    }
    format!(
        "{:>7} |{}| ({} events)\n",
        label,
        row.iter().collect::<String>(),
        events_at.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_bars_scale_to_max() {
        let rows = vec![
            ("s1".to_string(), 100.0, 50.0),
            ("s2".to_string(), 25.0, 100.0),
        ];
        let out = paired_bars(&rows, "HTTP", "SPDY", 20);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(&"█".repeat(20)), "full bar for the max");
        assert!(lines[1].contains(&"█".repeat(10)), "half bar");
        assert!(lines[0].trim_end().ends_with("100"));
    }

    #[test]
    fn step_trace_has_height_rows_plus_axis() {
        let samples = vec![0.0, 5.0, 10.0, 5.0, 0.0];
        let out = step_trace(&samples, 4, "t", "cwnd");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4 + 2);
        // Peak column is filled in the top band.
        assert!(lines[0].contains('█'));
    }

    #[test]
    fn step_trace_empty_is_empty() {
        assert!(step_trace(&[], 4, "t", "y").is_empty());
        assert!(step_trace(&[1.0], 0, "t", "y").is_empty());
    }

    #[test]
    fn event_axis_places_marks() {
        let out = event_axis(&[0.0, 50.0, 99.0], 100.0, 10, "rtx");
        assert_eq!(out.matches('×').count(), 3);
        assert!(out.contains("(3 events)"));
        // Out-of-range events are dropped.
        let out2 = event_axis(&[150.0], 100.0, 10, "rtx");
        assert_eq!(out2.matches('×').count(), 0);
    }
}
