//! Table 1: characteristics of the tested websites — regenerated from the
//! synthesized corpus and compared against the published averages.

use crate::{ExpOpts, Report};
use serde_json::json;
use spdyier_sim::DetRng;
use spdyier_workload::{synthesize, ObjectKind, TABLE1};

/// Regenerate Table 1 from synthesized pages (averaged over seeds).
pub fn run(opts: ExpOpts) -> Report {
    let mut rows = Vec::new();
    let mut text = String::from(
        "site  category        objs(spec)  objs(gen)  KB(spec)  KB(gen)  dom(spec)  dom(gen)  text  js/css  img\n",
    );
    for spec in &TABLE1 {
        let mut objs = 0.0;
        let mut kb = 0.0;
        let mut doms = 0.0;
        let mut text_n = 0.0;
        let mut jscss = 0.0;
        let mut imgs = 0.0;
        for s in 0..opts.seeds {
            let mut rng = DetRng::new(s).fork_indexed("t1", u64::from(spec.index));
            let page = synthesize(spec, &mut rng);
            objs += page.object_count() as f64;
            kb += page.total_bytes() as f64 / 1024.0;
            doms += page.domains().len() as f64;
            text_n +=
                (page.count_kind(ObjectKind::Html) + page.count_kind(ObjectKind::Other)) as f64;
            jscss += (page.count_kind(ObjectKind::Script) + page.count_kind(ObjectKind::Stylesheet))
                as f64;
            imgs += page.count_kind(ObjectKind::Image) as f64;
        }
        let n = opts.seeds as f64;
        let (objs, kb, doms, text_n, jscss, imgs) =
            (objs / n, kb / n, doms / n, text_n / n, jscss / n, imgs / n);
        text.push_str(&format!(
            "{:>4}  {:<14} {:>10.1} {:>10.1} {:>9.1} {:>8.0} {:>10.1} {:>9.1} {:>5.1} {:>7.1} {:>5.1}\n",
            spec.index,
            spec.category,
            spec.total_objects,
            objs,
            spec.avg_size_kb,
            kb,
            spec.domains,
            doms,
            text_n,
            jscss,
            imgs
        ));
        rows.push(json!({
            "site": spec.index,
            "category": spec.category,
            "objects_spec": spec.total_objects,
            "objects_gen": objs,
            "kb_spec": spec.avg_size_kb,
            "kb_gen": kb,
            "domains_spec": spec.domains,
            "domains_gen": doms,
            "text": text_n,
            "jscss": jscss,
            "images": imgs,
        }));
    }
    Report {
        id: "table1",
        title: "Characteristics of tested websites",
        paper_claim: "20 sites: 5–323 objects, 56 KB–4.7 MB, 2–85 domains, heavy JS/CSS use",
        text,
        data: json!({ "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_corpus_tracks_spec() {
        let report = run(ExpOpts::quick());
        assert_eq!(report.id, "table1");
        let rows = report.data["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 20);
        for row in rows {
            let spec = row["objects_spec"].as_f64().unwrap();
            let generated = row["objects_gen"].as_f64().unwrap();
            assert!(
                (generated - spec).abs() <= spec * 0.3 + 3.0,
                "site {}: {generated} vs {spec}",
                row["site"]
            );
        }
    }
}
