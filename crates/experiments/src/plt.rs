//! Page-load-time comparisons: Fig. 3 (3G box plots), Fig. 4 (WiFi means),
//! Fig. 16 (LTE box plots).

use crate::{paired_runs, plts_by_site, ExpOpts, Report};
use serde_json::json;
use spdyier_core::NetworkKind;
use spdyier_sim::{BoxStats, MeanCi};

fn boxplot_text(
    http: &[(u32, Vec<f64>)],
    spdy: &[(u32, Vec<f64>)],
) -> (String, Vec<serde_json::Value>) {
    let mut text = String::from(
        "site   HTTP min/q1/med/q3/max (mean)          SPDY min/q1/med/q3/max (mean)\n",
    );
    let mut rows = Vec::new();
    for ((site, h), (_, s)) in http.iter().zip(spdy.iter()) {
        let hb = BoxStats::from_samples(h);
        let sb = BoxStats::from_samples(s);
        let fmt = |b: &Option<BoxStats>| match b {
            Some(b) => format!(
                "{:>5.0}/{:>5.0}/{:>5.0}/{:>5.0}/{:>6.0} ({:>5.0})",
                b.min, b.q1, b.median, b.q3, b.max, b.mean
            ),
            None => "          (no samples)          ".to_string(),
        };
        text.push_str(&format!("{:>4}   {}   {}\n", site, fmt(&hb), fmt(&sb)));
        rows.push(json!({ "site": site, "http": hb, "spdy": sb }));
    }
    (text, rows)
}

/// Fig. 3: page load times over 3G, HTTP vs SPDY.
pub fn fig3(opts: ExpOpts) -> Report {
    let pairs = paired_runs(NetworkKind::Umts3G, opts, false);
    let http: Vec<&spdyier_core::RunResult> = pairs.iter().map(|(h, _)| h).collect();
    let spdy: Vec<_> = pairs.iter().map(|(_, s)| s).collect();
    let hs = plts_by_site(&http);
    let ss = plts_by_site(&spdy);
    let (mut text, rows) = boxplot_text(&hs, &ss);
    // A terminal rendering of the figure itself: median PLT per site.
    let bar_rows: Vec<(String, f64, f64)> = hs
        .iter()
        .zip(ss.iter())
        .map(|((site, h), (_, s))| (format!("site {site}"), median(h), median(s)))
        .collect();
    text.push('\n');
    text.push_str(&crate::ascii::paired_bars(&bar_rows, "HTTP", "SPDY", 40));
    // Significance by box separation: a site is a clear win only when the
    // interquartile boxes do not overlap (the visual read of a box plot).
    let mut clear_http = 0;
    let mut clear_spdy = 0;
    let mut ties = 0;
    for ((_, h), (_, s)) in hs.iter().zip(ss.iter()) {
        match (BoxStats::from_samples(h), BoxStats::from_samples(s)) {
            (Some(hb), Some(sb)) if hb.q3 < sb.q1 => clear_http += 1,
            (Some(hb), Some(sb)) if sb.q3 < hb.q1 => clear_spdy += 1,
            _ => ties += 1,
        }
    }
    text.push_str(&format!(
        "\nclear wins (non-overlapping IQR boxes): HTTP {clear_http}, SPDY {clear_spdy};          overlapping/no significant difference: {ties}/20 — {}\n",
        if ties >= 8 {
            "no convincing winner (matches the paper)"
        } else {
            "distributions separate more than the paper's"
        }
    ));
    let rtx_h: u64 = http.iter().map(|r| r.total_retransmissions).sum::<u64>() / opts.seeds;
    let rtx_s: u64 = spdy.iter().map(|r| r.total_retransmissions).sum::<u64>() / opts.seeds;
    text.push_str(&format!(
        "avg retransmissions per run: HTTP {rtx_h}, SPDY {rtx_s} (paper: 117.3 vs 67.3)\n"
    ));
    Report {
        id: "fig3",
        title: "Page load time over 3G (box plots)",
        paper_claim: "no convincing winner between HTTP and SPDY over 3G",
        text,
        data: json!({ "sites": rows, "rtx_http": rtx_h, "rtx_spdy": rtx_s }),
    }
}

/// Fig. 4: page load times over 802.11g/broadband — SPDY wins everywhere.
pub fn fig4(opts: ExpOpts) -> Report {
    let pairs = paired_runs(NetworkKind::Wifi, opts, false);
    let http: Vec<&spdyier_core::RunResult> = pairs.iter().map(|(h, _)| h).collect();
    let spdy: Vec<_> = pairs.iter().map(|(_, s)| s).collect();
    let hs = plts_by_site(&http);
    let ss = plts_by_site(&spdy);
    let mut text =
        String::from("site   HTTP mean±CI95 (ms)    SPDY mean±CI95 (ms)    SPDY improvement\n");
    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for ((site, h), (_, s)) in hs.iter().zip(ss.iter()) {
        let hm = MeanCi::from_samples(h);
        let sm = MeanCi::from_samples(s);
        let improvement = if hm.mean > 0.0 {
            (hm.mean - sm.mean) / hm.mean * 100.0
        } else {
            0.0
        };
        improvements.push(improvement);
        text.push_str(&format!(
            "{:>4}   {:>8.0} ± {:>5.0}      {:>8.0} ± {:>5.0}      {:>6.1}%\n",
            site, hm.mean, hm.ci95, sm.mean, sm.ci95, improvement
        ));
        rows.push(json!({ "site": site, "http": hm, "spdy": sm, "improvement_pct": improvement }));
    }
    let wins = improvements.iter().filter(|&&i| i > 0.0).count();
    text.push_str(&format!(
        "\nSPDY faster on {wins}/20 sites; improvements {:.0}%–{:.0}% (paper: 4%–56%)\n",
        improvements.iter().cloned().fold(f64::MAX, f64::min),
        improvements.iter().cloned().fold(f64::MIN, f64::max),
    ));
    Report {
        id: "fig4",
        title: "Page load time over 802.11g/broadband",
        paper_claim: "SPDY consistently beats HTTP on WiFi, improvements 4%–56%",
        text,
        data: json!({ "sites": rows }),
    }
}

/// Fig. 16: page load times over LTE.
pub fn fig16(opts: ExpOpts) -> Report {
    let pairs = paired_runs(NetworkKind::Lte, opts, false);
    let http: Vec<&spdyier_core::RunResult> = pairs.iter().map(|(h, _)| h).collect();
    let spdy: Vec<_> = pairs.iter().map(|(_, s)| s).collect();
    let hs = plts_by_site(&http);
    let ss = plts_by_site(&spdy);
    let (mut text, rows) = boxplot_text(&hs, &ss);
    let rtx_h: f64 = http
        .iter()
        .map(|r| r.total_retransmissions as f64)
        .sum::<f64>()
        / opts.seeds as f64;
    let rtx_s: f64 = spdy
        .iter()
        .map(|r| r.total_retransmissions as f64)
        .sum::<f64>()
        / opts.seeds as f64;
    let mean = |runs: &[(u32, Vec<f64>)]| -> f64 {
        let all: Vec<f64> = runs.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        spdyier_sim::stats::mean(&all)
    };
    text.push_str(&format!(
        "\nLTE means: HTTP {:.0} ms, SPDY {:.0} ms (both far below 3G)\n",
        mean(&hs),
        mean(&ss)
    ));
    text.push_str(&format!(
        "avg retransmissions per run: HTTP {rtx_h:.1}, SPDY {rtx_s:.1} (paper: 8.9 vs 7.5 — far below 3G's 117/63)\n"
    ));
    Report {
        id: "fig16",
        title: "Page load time over LTE (box plots)",
        paper_claim: "much faster than 3G; SPDY edges ahead after the first pages; rtx down to 8.9/7.5 per run",
        text,
        data: json!({ "sites": rows, "rtx_http": rtx_h, "rtx_spdy": rtx_s }),
    }
}

fn median(xs: &[f64]) -> f64 {
    spdyier_sim::stats::percentile(xs, 50.0)
}
