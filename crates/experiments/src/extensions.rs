//! Extension experiments beyond the paper's figures: the pipelining the
//! paper could not enable, a promotion-delay sensitivity sweep, and the
//! radio-energy cost of the Fig. 14 pinning workaround.

use crate::{schedule_for_seed, ExpOpts, Report};
use serde_json::json;
use spdyier_core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode, RunResult};
use spdyier_sim::SimDuration;

fn run_with<F: Fn(&mut ExperimentConfig)>(
    protocol: ProtocolMode,
    network: NetworkKind,
    seed: u64,
    tweak: F,
) -> RunResult {
    let mut cfg = ExperimentConfig::paper_3g(protocol, seed)
        .with_network(network)
        .with_schedule(schedule_for_seed(seed));
    tweak(&mut cfg);
    run_experiment(cfg)
}

fn mean_plt(runs: &[RunResult]) -> f64 {
    let v: Vec<f64> = runs.iter().flat_map(|r| r.plts_ms()).collect();
    spdyier_sim::stats::mean(&v)
}

/// HTTP pipelining (Fig. 1c): the paper had to leave it off because
/// Squid's support was rudimentary; our proxy supports it. Gettys (cited
/// in §7) argued pipelining improves TCP congestion behaviour.
pub fn pipelining(opts: ExpOpts) -> Report {
    let mut text = String::from("network  depth   mean PLT (ms)   connections/run   rtx/run\n");
    let mut rows = Vec::new();
    for network in [NetworkKind::Umts3G, NetworkKind::Wifi] {
        for depth in [1usize, 2, 4, 8] {
            let runs: Vec<RunResult> = (0..opts.seeds)
                .map(|s| {
                    run_with(ProtocolMode::Http, network, s, |cfg| {
                        cfg.http_pipelining = depth;
                    })
                })
                .collect();
            let plt = mean_plt(&runs);
            let conns = runs.iter().map(|r| r.connections_opened).sum::<u64>() / opts.seeds;
            let rtx = runs.iter().map(|r| r.total_retransmissions).sum::<u64>() / opts.seeds;
            text.push_str(&format!(
                "{:<7}  {:>5}   {:>12.0}   {:>15}   {:>7}\n",
                network.label(),
                depth,
                plt,
                conns,
                rtx
            ));
            rows.push(json!({
                "network": network.label(),
                "depth": depth,
                "mean_plt_ms": plt,
                "connections": conns,
                "rtx": rtx,
            }));
        }
    }
    text.push_str(
        "\nextension (not in the paper): pipelining shortens HTTP's per-connection queueing\nbut responses still serialize in request order — head-of-line blocking remains,\nas the paper's §2.1 anticipates.\n",
    );
    Report {
        id: "pipelining",
        title: "HTTP pipelining depth sweep (extension)",
        paper_claim: "not measured — Squid's pipelining support was too rudimentary to enable",
        text,
        data: json!({ "rows": rows }),
    }
}

/// Sensitivity of page load time to the promotion delay — the knob the
/// whole paper turns on. LTE's improved state machine is, in this view,
/// just a point on this curve.
pub fn promo_sweep(opts: ExpOpts) -> Report {
    let mut text = String::from("promotion (ms)   HTTP PLT (ms)   SPDY PLT (ms)   SPDY rtx/run\n");
    let mut rows = Vec::new();
    for promo_ms in [0u64, 500, 1000, 2000, 3000, 4000] {
        let mut cells = Vec::new();
        for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
            let runs: Vec<RunResult> = (0..opts.seeds)
                .map(|s| {
                    run_with(protocol, NetworkKind::Umts3G, s, |cfg| {
                        cfg.rrc_promotion_override = Some(SimDuration::from_millis(promo_ms));
                    })
                })
                .collect();
            cells.push(runs);
        }
        let h = mean_plt(&cells[0]);
        let s = mean_plt(&cells[1]);
        let s_rtx = cells[1]
            .iter()
            .map(|r| r.total_retransmissions)
            .sum::<u64>()
            / opts.seeds;
        text.push_str(&format!(
            "{:>13}   {:>13.0}   {:>13.0}   {:>12}\n",
            promo_ms, h, s, s_rtx
        ));
        rows.push(json!({
            "promotion_ms": promo_ms,
            "http_plt_ms": h,
            "spdy_plt_ms": s,
            "spdy_rtx": s_rtx,
        }));
    }
    text.push_str(
        "\nextension (not in the paper): PLT grows with promotion delay for both protocols;\nspurious retransmissions appear once the promotion exceeds the converged RTO\n(~300–500 ms) and grow with every backoff the stall outlasts.\n",
    );
    Report {
        id: "promosweep",
        title: "Promotion-delay sensitivity sweep (extension)",
        paper_claim:
            "implicit — the 3G (2 s) vs LTE (0.4 s) comparison is two points on this curve",
        text,
        data: json!({ "rows": rows }),
    }
}

/// The battery cost of the Fig. 14 workaround: §5.6.1 warns that pinning
/// DCH "wastes cellular resources and drains device battery" — quantified
/// here with the radio energy meter.
pub fn energy(opts: ExpOpts) -> Report {
    let mut text = String::from("condition            mean PLT (ms)   radio energy (J/run)\n");
    let mut rows = Vec::new();
    for (label, ping) in [("3G baseline", false), ("3G + pinning ping", true)] {
        let runs: Vec<RunResult> = (0..opts.seeds)
            .map(|s| {
                run_with(ProtocolMode::spdy(), NetworkKind::Umts3G, s, |cfg| {
                    cfg.keepalive_ping = ping.then(|| SimDuration::from_secs(3));
                })
            })
            .collect();
        let plt = mean_plt(&runs);
        let energy_j = runs.iter().map(|r| r.energy_mj).sum::<f64>() / opts.seeds as f64 / 1e3;
        text.push_str(&format!(
            "{:<20} {:>13.0}   {:>18.1}\n",
            label, plt, energy_j
        ));
        rows.push(json!({ "condition": label, "mean_plt_ms": plt, "energy_j": energy_j }));
    }
    let base = rows[0]["energy_j"].as_f64().unwrap_or(1.0);
    let pinned = rows[1]["energy_j"].as_f64().unwrap_or(0.0);
    text.push_str(&format!(
        "\npinning costs {:.1}x the radio energy — the §5.6.1 objection, quantified: the\nfix must live in TCP, not in keeping the radio awake.\n",
        pinned / base.max(1e-9)
    ));
    Report {
        id: "energy",
        title: "Radio energy cost of DCH pinning (extension)",
        paper_claim:
            "§5.6.1: keeping the device in DCH wastes radio resources and battery (not quantified)",
        text,
        data: json!({ "rows": rows }),
    }
}
