//! Profiled sweeps: run experiment cells under the self-profiler with
//! per-shard heartbeats and a merged end-of-run span table.
//!
//! A *cell* is one `(protocol, seed)` run of the full 20-site schedule.
//! [`profiled_cells_on`] fans cells across an [`Executor`], and on the
//! worker thread that finishes each cell it:
//!
//! 1. samples the thread-local allocation counters around the run (so
//!    the cell's allocations are attributed to the cell, not the pool),
//! 2. drains that worker's span table into one shared merged
//!    [`ProfileReport`], and
//! 3. emits a heartbeat line through [`SweepTelemetry`].
//!
//! The profiler never touches simulated state, so the returned
//! [`RunResult`]s are byte-identical whether the profiler is enabled,
//! disabled, or absent — the determinism suite pins this.

use std::io::Write;
use std::sync::Mutex;

use spdyier_core::{FlightLog, NetworkKind, ProtocolMode, RunResult, TraceLevel};
use spdyier_prof::{CellReport, ProfileReport, SweepTelemetry, TelemetryTotals};

use crate::exec::Executor;
use crate::run_schedule_traced;

/// Everything a profiled sweep produced.
#[derive(Debug)]
pub struct ProfiledSweep {
    /// One `(RunResult, FlightLog)` per cell, in cell order.
    pub runs: Vec<(RunResult, FlightLog)>,
    /// The span tables of every worker thread, merged.
    pub profile: ProfileReport,
    /// Heartbeat totals (events, visits, allocs, trace drops).
    pub telemetry: TelemetryTotals,
    /// Host wall-time of the sweep, milliseconds.
    pub wall_ms: f64,
}

/// The cell list for a paired HTTP/SPDY sweep over `seeds` seeds
/// (HTTP before SPDY per seed, matching [`crate::paired_runs_on`]).
pub fn paired_cells(seeds: u64) -> Vec<(ProtocolMode, u64)> {
    (0..seeds)
        .flat_map(|s| [(ProtocolMode::Http, s), (ProtocolMode::spdy(), s)])
        .collect()
}

/// Run `cells` on `exec` with per-cell attribution and heartbeats.
///
/// `heartbeat` receives one JSONL line per completed cell (`None`
/// keeps the totals without emitting). The flight recorder runs at
/// `level` inside every cell; `TraceLevel::Off` profiles the untraced
/// configuration. Whether the *profiler* records anything is governed
/// by the global [`spdyier_prof::set_enabled`] switch, which this
/// function deliberately does not touch — callers own that decision so
/// benchmarks can measure both sides.
pub fn profiled_cells_on(
    exec: &Executor,
    cells: &[(ProtocolMode, u64)],
    network: NetworkKind,
    level: TraceLevel,
    heartbeat: Option<Box<dyn Write + Send>>,
) -> ProfiledSweep {
    let telemetry = SweepTelemetry::new(cells.len(), heartbeat);
    let merged: Mutex<ProfileReport> = Mutex::new(ProfileReport::new());
    let runs = exec.run_observed(
        cells.len(),
        |i| {
            let (protocol, seed) = cells[i];
            let before = spdyier_prof::thread_counts();
            let out = run_schedule_traced(protocol, network, seed, level);
            let d = spdyier_prof::thread_counts().since(before);
            // Drain this worker's span table while we're still on the
            // worker thread; merging under the mutex is cheap (span
            // count, not event count).
            let spans = spdyier_prof::take_thread_profile();
            if !spans.is_empty() {
                merged
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .merge(&spans);
            }
            (out, d)
        },
        |job, worker, ((run, log), d)| {
            telemetry.cell_done(&CellReport {
                shard: worker,
                cell: job,
                visits: run.visits.len() as u64,
                events: log.emitted,
                trace_dropped: log.dropped,
                allocs: d.allocs,
                alloc_bytes: d.bytes,
            });
        },
    );
    let wall_ms = telemetry.elapsed_ms();
    let totals = telemetry.finish();
    ProfiledSweep {
        runs: runs.into_iter().map(|(out, _)| out).collect(),
        profile: merged
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
        telemetry: totals,
        wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_cells_alternate_http_spdy() {
        let cells = paired_cells(2);
        assert_eq!(cells.len(), 4);
        assert!(matches!(cells[0], (ProtocolMode::Http, 0)));
        assert!(matches!(cells[1], (ProtocolMode::Spdy { .. }, 0)));
        assert!(matches!(cells[2], (ProtocolMode::Http, 1)));
        assert!(matches!(cells[3], (ProtocolMode::Spdy { .. }, 1)));
    }

    #[test]
    fn profiled_sweep_matches_plain_sweep() {
        // One seed on WiFi (the fastest network) — the sweep must return
        // the same runs `run_schedule_traced` gives directly, regardless
        // of the telemetry riding along.
        let cells = paired_cells(1);
        let sweep = profiled_cells_on(
            &Executor::new(2),
            &cells,
            NetworkKind::Wifi,
            TraceLevel::Off,
            None,
        );
        assert_eq!(sweep.runs.len(), 2);
        assert_eq!(sweep.telemetry.completed, 2);
        let direct = crate::run_schedule(ProtocolMode::Http, NetworkKind::Wifi, 0, false);
        assert_eq!(
            serde_json::to_string(&sweep.runs[0].0).unwrap(),
            serde_json::to_string(&direct).unwrap(),
            "telemetry must not perturb the runs"
        );
        let visits: u64 = sweep.runs.iter().map(|(r, _)| r.visits.len() as u64).sum();
        assert_eq!(sweep.telemetry.visits, visits);
    }
}
