//! Property test pitting the slab-backed [`EventQueue`] against the
//! original `BinaryHeap + HashMap` lazy-cancellation implementation as
//! an oracle: any interleaving of schedule/cancel/pop must produce the
//! identical `(time, event)` sequence. Same-instant FIFO order — part
//! of the determinism contract every golden artifact depends on — is
//! pinned by generating many same-time schedules (delta is drawn from
//! 0..4 ms so collisions are the common case, not the corner case).

use proptest::prelude::*;
use spdyier_sim::{EventQueue, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The pre-slab queue, verbatim in behaviour: a min-heap of
/// `(time, seq)` entries plus a `seq -> event` map, with cancelled
/// entries skipped lazily at the head.
struct OracleQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    live: HashMap<u64, E>,
    next_seq: u64,
}

impl<E> OracleQueue<E> {
    fn new() -> Self {
        OracleQueue {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, seq)));
        self.live.insert(seq, event);
        seq
    }

    fn cancel(&mut self, seq: u64) -> Option<E> {
        self.live.remove(&seq)
    }

    fn is_pending(&self, seq: u64) -> bool {
        self.live.contains_key(&seq)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse((t, _))| *t)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse((time, seq)) = self.heap.pop()?;
        let event = self.live.remove(&seq).expect("head is live");
        Some((time, event))
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse((_, seq))) = self.heap.peek() {
            if self.live.contains_key(seq) {
                break;
            }
            self.heap.pop();
        }
    }
}

// Ops are drawn as `(kind, delta, nth)` tuples (the vendored proptest
// stub has no `prop_oneof`): kind 0..4 = schedule at `now + delta` ms,
// 4..6 = cancel the `nth` issued handle, 6..9 = pop, 9 = peek_time.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn slab_queue_matches_heap_map_oracle(
        ops in prop::collection::vec((0u8..10, 0u64..4, 0usize..64), 1..200)
    ) {
        let mut slab: EventQueue<u32> = EventQueue::new();
        let mut oracle: OracleQueue<u32> = OracleQueue::new();
        // Parallel id books: the nth schedule's handle in each world.
        let mut slab_ids = Vec::new();
        let mut oracle_ids = Vec::new();
        let mut now = SimTime::ZERO;
        let mut payload = 0u32;

        for (kind, delta_ms, nth) in ops {
            match kind {
                0..=3 => {
                    let at = now + SimDuration::from_millis(delta_ms);
                    slab_ids.push(slab.schedule(at, payload));
                    oracle_ids.push(oracle.schedule(at, payload));
                    payload += 1;
                }
                4..=5 => {
                    if slab_ids.is_empty() {
                        continue;
                    }
                    let nth = nth % slab_ids.len();
                    let a = slab.cancel(slab_ids[nth]);
                    let b = oracle.cancel(oracle_ids[nth]);
                    prop_assert_eq!(a, b, "cancel({}) diverged", nth);
                }
                6..=8 => {
                    let a = slab.pop();
                    let b = oracle.pop();
                    prop_assert_eq!(a, b, "pop diverged");
                    if let Some((t, _)) = a {
                        now = t;
                    }
                }
                _ => {
                    prop_assert_eq!(slab.peek_time(), oracle.peek_time());
                }
            }
            prop_assert_eq!(slab.len(), oracle.len());
            for (s, o) in slab_ids.iter().zip(&oracle_ids) {
                prop_assert_eq!(slab.is_pending(*s), oracle.is_pending(*o));
            }
        }

        // Drain both queues to the end: the tails must agree too.
        loop {
            let a = slab.pop();
            let b = oracle.pop();
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// Under churn the slab never outgrows peak liveness, while the
    /// oracle's heap retains every cancelled entry below the head.
    #[test]
    fn slab_capacity_tracks_liveness_not_churn(rounds in 100usize..2000) {
        let mut q: EventQueue<u8> = EventQueue::new();
        let mut id = q.schedule(SimTime::from_millis(10), 0);
        for r in 0..rounds {
            prop_assert!(q.cancel(id).is_some());
            id = q.schedule(SimTime::from_millis(10 + (r as u64 % 5)), 0);
        }
        prop_assert_eq!(q.len(), 1);
        prop_assert_eq!(q.slot_capacity(), 1);
    }
}
