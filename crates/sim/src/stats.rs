//! Statistical summaries used by the experiment harness: five-number
//! box-plot summaries (the paper's Figures 3 and 16), CDFs (Figure 14),
//! means with confidence intervals (Figure 4), histograms, and the
//! mergeable [`QuantileSketch`] population-scale sweeps fold into.

use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolation percentile (`q` in `[0, 100]`) of an unsorted slice.
/// Returns 0 for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&sorted, q)
}

/// Percentile of an already-sorted slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-number summary plus mean that the paper's box plots show:
/// min, 25th percentile, median, 75th percentile, max, and the mean circle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BoxStats {
    /// Smallest sample (bottom whisker).
    pub min: f64,
    /// 25th percentile (box bottom).
    pub q1: f64,
    /// 50th percentile (the notch).
    pub median: f64,
    /// 75th percentile (box top).
    pub q3: f64,
    /// Largest sample (top whisker).
    pub max: f64,
    /// Arithmetic mean (the circle marker in the paper's plots).
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Compute from an unsorted sample. Returns `None` for an empty sample.
    pub fn from_samples(xs: &[f64]) -> Option<BoxStats> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in BoxStats input"));
        Some(BoxStats {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: sorted[sorted.len() - 1],
            mean: mean(&sorted),
            n: sorted.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Mean and a 95% normal-approximation confidence interval half-width,
/// as plotted in the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MeanCi {
    /// Arithmetic mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Sample count.
    pub n: usize,
}

impl MeanCi {
    /// Compute from a sample; `ci95` is 0 for n < 2.
    pub fn from_samples(xs: &[f64]) -> MeanCi {
        let n = xs.len();
        let m = mean(xs);
        let ci = if n < 2 {
            0.0
        } else {
            // Sample (n-1) std error with z = 1.96.
            let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            1.96 * (var / n as f64).sqrt()
        };
        MeanCi {
            mean: m,
            ci95: ci,
            n,
        }
    }
}

/// An empirical CDF: sorted values with cumulative fractions.
#[derive(Debug, Clone, Serialize)]
pub struct Cdf {
    /// `(value, fraction_of_samples <= value)` pairs in ascending value order.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Build from an unsorted sample.
    pub fn from_samples(xs: &[f64]) -> Cdf {
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        let n = sorted.len() as f64;
        let points = sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect();
        Cdf { points }
    }

    /// Fraction of samples `<= x` (0 for an empty CDF).
    pub fn fraction_at(&self, x: f64) -> f64 {
        match self.points.iter().rposition(|&(v, _)| v <= x) {
            Some(i) => self.points[i].1,
            None => 0.0,
        }
    }

    /// Smallest value with cumulative fraction `>= p` (the p-quantile).
    pub fn quantile(&self, p: f64) -> Option<f64> {
        self.points.iter().find(|&&(_, f)| f >= p).map(|&(v, _)| v)
    }
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range clamping.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// Inclusive lower bound of the range.
    pub lo: f64,
    /// Exclusive upper bound of the range.
    pub hi: f64,
    /// Per-bucket observation counts.
    pub counts: Vec<u64>,
    /// Total observations recorded (including clamped ones).
    pub total: u64,
    /// NaN observations rejected by [`Histogram::record`]. NaN fails
    /// both range comparisons and `as usize` saturates it to 0, so the
    /// old behaviour silently inflated bucket 0; rejected samples are
    /// counted here instead of disappearing.
    pub rejected_nan: u64,
}

impl Histogram {
    /// Create with `bins` equal-width buckets. Panics if `bins == 0` or the
    /// range is empty.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo, "histogram needs a non-empty range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            rejected_nan: 0,
        }
    }

    /// Record one observation; values outside `[lo, hi)` clamp to the
    /// boundary buckets. NaN is rejected (counted in
    /// [`Histogram::rejected_nan`], not in any bucket or `total`).
    pub fn record(&mut self, x: f64) {
        self.record_n(x, 1);
    }

    /// Record `n` identical observations (the bulk form sketches use
    /// when they expand bucket counts into a fixed-width histogram).
    pub fn record_n(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        if x.is_nan() {
            self.rejected_nan += n;
            return;
        }
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += n;
        self.total += n;
    }

    /// Merge `other`'s counts into `self`. Both histograms must share
    /// the exact same layout; any disagreement returns a [`MergeError`]
    /// naming the mismatching field instead of silently adding counts
    /// into the wrong buckets (or panicking on a length mismatch).
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.lo.to_bits() != other.lo.to_bits() {
            return Err(MergeError::mismatch("histogram.lo", self.lo, other.lo));
        }
        if self.hi.to_bits() != other.hi.to_bits() {
            return Err(MergeError::mismatch("histogram.hi", self.hi, other.hi));
        }
        if self.counts.len() != other.counts.len() {
            return Err(MergeError::mismatch(
                "histogram.counts.len",
                self.counts.len(),
                other.counts.len(),
            ));
        }
        for (sum, add) in self.counts.iter_mut().zip(&other.counts) {
            *sum += add;
        }
        self.total += other.total;
        self.rejected_nan += other.rejected_nan;
        Ok(())
    }

    /// `(bucket_midpoint, count)` pairs.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }
}

/// Diagnostic error from merging two incompatible summaries. Carries
/// the dotted path of the field that disagreed (`histogram.lo`,
/// `quantile_sketch.sub_bits`, `cell.protocol`, …) so a failed shard
/// merge names the exact layout parameter at fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// Dotted path of the mismatching field.
    pub path: String,
    /// `left != right` rendering of the disagreement.
    pub detail: String,
}

impl MergeError {
    /// A mismatch error for `path` with both sides rendered.
    pub fn mismatch<T: std::fmt::Debug>(path: &str, left: T, right: T) -> MergeError {
        MergeError {
            path: path.into(),
            detail: format!("{left:?} != {right:?}"),
        }
    }
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: cannot merge, {}", self.path, self.detail)
    }
}

impl std::error::Error for MergeError {}

/// Sub-octave resolution of the default [`QuantileSketch`]: the top 7
/// mantissa bits index 128 log-linear buckets per power of two, for a
/// worst-case relative quantile error of `2^(1/128) / 2` ≈ 0.28%.
pub const SKETCH_SUB_BITS: u32 = 7;

/// Fixed-point scale (2^32) for the sketch's running sum: summing
/// integers keeps the mean exactly associative and order-independent,
/// which f64 addition is not.
const SUM_FP_BITS: u32 = 32;

fn sum_fp(x: f64) -> u128 {
    // x is finite and non-negative here; `as` saturates on overflow.
    (x * (1u64 << SUM_FP_BITS) as f64).round() as u128
}

/// A mergeable, deterministic quantile sketch over non-negative finite
/// samples.
///
/// Buckets are fixed log-linear: a sample's bucket index is its f64 bit
/// pattern truncated to the exponent plus the top `sub_bits` mantissa
/// bits — pure integer math, no `log()`, so every build and platform
/// buckets identically. Because the layout is fixed (not adaptive),
/// merging is bucket-wise addition: **exact** (merging two sketches
/// equals sketching the concatenated samples), **associative**, and
/// **commutative**. Min, max, and count are tracked exactly, quantile
/// estimates are clamped into `[min, max]` (single-sample and constant
/// sketches are therefore exact), and the mean comes from a fixed-point
/// integer sum so it is bit-for-bit independent of fold order. Memory
/// is O(distinct buckets) — at most a few thousand — regardless of how
/// many samples are recorded; that is what makes population-scale
/// sweeps O(cells) instead of O(total visits).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Sub-octave resolution (mantissa bits per bucket index).
    sub_bits: u32,
    /// Sparse bucket counts, keyed by truncated f64 bit pattern.
    buckets: BTreeMap<u32, u64>,
    /// Samples exactly equal to zero (no log bucket exists for them).
    zeros: u64,
    /// Total samples recorded (zeros included, rejections excluded).
    count: u64,
    /// NaN, infinite, or negative samples rejected by [`QuantileSketch::record`].
    rejected: u64,
    /// Exact smallest sample (+inf while empty).
    min: f64,
    /// Exact largest sample (-inf while empty).
    max: f64,
    /// Fixed-point (2^32-scaled) sum of all samples.
    sum_fp: u128,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch at the default [`SKETCH_SUB_BITS`] resolution.
    pub fn new() -> QuantileSketch {
        QuantileSketch::with_sub_bits(SKETCH_SUB_BITS)
    }

    /// An empty sketch with `sub_bits` mantissa bits per bucket
    /// (clamped to `[0, 20]`). Sketches of different resolution refuse
    /// to merge.
    pub fn with_sub_bits(sub_bits: u32) -> QuantileSketch {
        QuantileSketch {
            sub_bits: sub_bits.min(20),
            buckets: BTreeMap::new(),
            zeros: 0,
            count: 0,
            rejected: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum_fp: 0,
        }
    }

    fn bucket_key(&self, x: f64) -> u32 {
        (x.to_bits() >> (52 - self.sub_bits)) as u32
    }

    fn bucket_lo(&self, key: u32) -> f64 {
        f64::from_bits(u64::from(key) << (52 - self.sub_bits))
    }

    /// Deterministic representative of a bucket: the arithmetic midpoint
    /// of its bounds.
    fn bucket_mid(&self, key: u32) -> f64 {
        (self.bucket_lo(key) + self.bucket_lo(key + 1)) / 2.0
    }

    /// Record one sample. NaN, infinite, and negative samples are
    /// rejected and counted in [`QuantileSketch::rejected`] — never
    /// silently folded into a bucket.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            self.rejected += 1;
            return;
        }
        if x == 0.0 {
            self.zeros += 1;
        } else {
            *self.buckets.entry(self.bucket_key(x)).or_insert(0) += 1;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum_fp = self.sum_fp.saturating_add(sum_fp(x));
    }

    /// Merge `other` into `self`. Exact: the result equals sketching
    /// both sample streams into one sketch, in any order. Returns a
    /// field-path [`MergeError`] if the layouts disagree.
    pub fn merge(&mut self, other: &QuantileSketch) -> Result<(), MergeError> {
        if self.sub_bits != other.sub_bits {
            return Err(MergeError::mismatch(
                "quantile_sketch.sub_bits",
                self.sub_bits,
                other.sub_bits,
            ));
        }
        for (&key, &n) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += n;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.rejected += other.rejected;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum_fp = self.sum_fp.saturating_add(other.sum_fp);
        Ok(())
    }

    /// Samples recorded (rejections excluded).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Samples rejected as NaN, infinite, or negative.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Exact minimum (0 while empty, mirroring `percentile(&[], 0)`).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 while empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact sum of all samples (up to the 2^-32 fixed-point rounding
    /// of each recorded sample).
    pub fn sum(&self) -> f64 {
        (self.sum_fp as f64) / (1u64 << SUM_FP_BITS) as f64
    }

    /// Mean (0 while empty). Computed from the integer fixed-point sum,
    /// so the value is identical however the samples were partitioned
    /// across merges.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`; 0 while empty): the bucket
    /// midpoint at the nearest rank, clamped into `[min, max]`. The
    /// estimate is within one bucket width of the exact value — a
    /// relative error of at most `2^(1 / 2^sub_bits) / 2`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are tracked exactly; answer from them so q0
        // and q1 (and every quantile of a single-sample sketch) carry
        // no bucket error at all.
        if target == 1 {
            return self.min;
        }
        if target == self.count {
            return self.max;
        }
        let mut cum = self.zeros;
        if cum >= target {
            return 0.0;
        }
        for (&key, &n) in &self.buckets {
            cum += n;
            if cum >= target {
                return self.bucket_mid(key).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// [`QuantileSketch::quantile`] with `p` in `[0, 100]`, mirroring
    /// [`percentile`].
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Five-number box summary built from the sketch: min/max/mean/n
    /// exact, quartiles within the sketch error bound.
    pub fn box_stats(&self) -> Option<BoxStats> {
        if self.count == 0 {
            return None;
        }
        Some(BoxStats {
            min: self.min,
            q1: self.quantile(0.25),
            median: self.quantile(0.5),
            q3: self.quantile(0.75),
            max: self.max,
            mean: self.mean(),
            n: self.count as usize,
        })
    }

    /// Empirical CDF over the bucket representatives (clamped into
    /// `[min, max]`).
    pub fn cdf(&self) -> Cdf {
        let n = self.count as f64;
        let mut points = Vec::with_capacity(self.buckets.len() + 1);
        let mut cum = 0u64;
        if self.zeros > 0 {
            cum += self.zeros;
            points.push((0.0, cum as f64 / n));
        }
        for (&key, &c) in &self.buckets {
            cum += c;
            points.push((
                self.bucket_mid(key).clamp(self.min, self.max),
                cum as f64 / n,
            ));
        }
        Cdf { points }
    }

    /// Expand into a fixed-width [`Histogram`] over `[lo, hi)` (bucket
    /// representatives, clamped like any other recorded value).
    pub fn to_histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        h.record_n(0.0, self.zeros);
        for (&key, &n) in &self.buckets {
            h.record_n(self.bucket_mid(key).clamp(self.min, self.max), n);
        }
        h
    }

    /// Decode a sketch from the JSON value produced by its `Serialize`
    /// impl (the checkpoint-store codec; the vendored serde has no
    /// typed deserializer).
    pub fn from_value(v: &Value) -> Result<QuantileSketch, String> {
        let field_u64 = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("quantile_sketch.{name}: missing or not unsigned"))
        };
        let field_f64 = |name: &str, empty: f64| -> Result<f64, String> {
            match v.get(name) {
                None => Err(format!("quantile_sketch.{name}: missing")),
                Some(Value::Null) => Ok(empty),
                Some(x) => x
                    .as_f64()
                    .ok_or_else(|| format!("quantile_sketch.{name}: not a number")),
            }
        };
        let mut sketch = QuantileSketch::with_sub_bits(
            u32::try_from(field_u64("sub_bits")?)
                .map_err(|_| "quantile_sketch.sub_bits: out of range".to_string())?,
        );
        sketch.zeros = field_u64("zeros")?;
        sketch.count = field_u64("count")?;
        sketch.rejected = field_u64("rejected")?;
        sketch.min = field_f64("min", f64::INFINITY)?;
        sketch.max = field_f64("max", f64::NEG_INFINITY)?;
        sketch.sum_fp =
            (u128::from(field_u64("sum_fp_hi")?) << 64) | u128::from(field_u64("sum_fp_lo")?);
        let buckets = v
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| "quantile_sketch.buckets: missing or not an array".to_string())?;
        for (i, pair) in buckets.iter().enumerate() {
            let key = pair
                .get_index(0)
                .and_then(Value::as_u64)
                .and_then(|k| u32::try_from(k).ok())
                .ok_or_else(|| format!("quantile_sketch.buckets[{i}][0]: not a bucket key"))?;
            let n = pair
                .get_index(1)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("quantile_sketch.buckets[{i}][1]: not a count"))?;
            sketch.buckets.insert(key, n);
        }
        Ok(sketch)
    }
}

impl Serialize for QuantileSketch {
    fn to_value(&self) -> Value {
        // min/max are ±inf while empty; JSON has no inf, so they encode
        // as null and decode back through the empty-sketch defaults.
        let bound = |x: f64| {
            if x.is_finite() {
                Value::F64(x)
            } else {
                Value::Null
            }
        };
        Value::Object(vec![
            ("sub_bits".into(), Value::U64(u64::from(self.sub_bits))),
            ("count".into(), Value::U64(self.count)),
            ("zeros".into(), Value::U64(self.zeros)),
            ("rejected".into(), Value::U64(self.rejected)),
            ("min".into(), bound(self.min)),
            ("max".into(), bound(self.max)),
            ("sum_fp_hi".into(), Value::U64((self.sum_fp >> 64) as u64)),
            ("sum_fp_lo".into(), Value::U64(self.sum_fp as u64)),
            (
                "buckets".into(),
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|(&k, &n)| Value::Array(vec![Value::U64(u64::from(k)), Value::U64(n)]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(percentile(&xs, 25.0), 1.75);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -10.0), 1.0);
        assert_eq!(percentile(&xs, 200.0), 2.0);
    }

    #[test]
    fn box_stats_on_known_sample() {
        let xs = [7.0, 1.0, 3.0, 5.0, 9.0];
        let b = BoxStats::from_samples(&xs).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.max, 9.0);
        assert_eq!(b.mean, 5.0);
        assert_eq!(b.n, 5);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.iqr(), 4.0);
        assert!(BoxStats::from_samples(&[]).is_none());
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let small = MeanCi::from_samples(&[1.0, 3.0]);
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 3.0 })
            .collect();
        let large = MeanCi::from_samples(&xs);
        assert_eq!(small.mean, 2.0);
        assert_eq!(large.mean, 2.0);
        assert!(large.ci95 < small.ci95);
        assert_eq!(MeanCi::from_samples(&[5.0]).ci95, 0.0);
    }

    #[test]
    fn cdf_fractions() {
        let c = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(2.0), 0.5);
        assert_eq!(c.fraction_at(10.0), 1.0);
        assert_eq!(c.quantile(0.5), Some(2.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
    }

    #[test]
    fn histogram_clamps_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-1.0); // clamps to first bucket
        h.record(0.5);
        h.record(9.9);
        h.record(100.0); // clamps to last bucket
        assert_eq!(h.total, 4);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[4], 2);
        let b = h.buckets();
        assert_eq!(b.len(), 5);
        assert!((b[0].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_nan_with_counter() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(f64::NAN);
        h.record(-f64::NAN);
        h.record(0.5);
        assert_eq!(h.rejected_nan, 2, "NaN must be counted as rejected");
        assert_eq!(h.total, 1, "NaN must not count as an observation");
        assert_eq!(h.counts[0], 1, "NaN must not inflate bucket 0");
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.5);
        b.record(9.0);
        b.record(f64::NAN);
        a.merge(&b).unwrap();
        assert_eq!(a.total, 3);
        assert_eq!(a.counts[0], 2);
        assert_eq!(a.counts[4], 1);
        assert_eq!(a.rejected_nan, 1);
    }

    #[test]
    fn histogram_merge_rejects_layout_mismatch_with_field_path() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let e = a.merge(&Histogram::new(1.0, 10.0, 5)).unwrap_err();
        assert_eq!(e.path, "histogram.lo");
        assert!(e.detail.contains("0.0") && e.detail.contains("1.0"), "{e}");
        let e = a.merge(&Histogram::new(0.0, 20.0, 5)).unwrap_err();
        assert_eq!(e.path, "histogram.hi");
        let e = a.merge(&Histogram::new(0.0, 10.0, 6)).unwrap_err();
        assert_eq!(e.path, "histogram.counts.len");
        assert!(e.to_string().contains("histogram.counts.len"), "{e}");
        // A failed merge must leave the target untouched.
        assert_eq!(a.total, 0);
    }

    #[test]
    fn sketch_tracks_exact_min_max_mean_count() {
        let mut s = QuantileSketch::new();
        for x in [120.5, 3000.0, 45.25, 0.0, 777.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 3000.0);
        let exact_mean = (120.5 + 3000.0 + 45.25 + 777.0) / 5.0;
        assert!((s.mean() - exact_mean).abs() < 1e-6, "{}", s.mean());
    }

    #[test]
    fn sketch_rejects_nonfinite_and_negative() {
        let mut s = QuantileSketch::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(-1.0);
        s.record(2.0);
        assert_eq!(s.rejected(), 3);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), 2.0);
    }

    #[test]
    fn sketch_quantiles_stay_within_relative_error_bound() {
        let mut s = QuantileSketch::new();
        for i in 1..=10_000u32 {
            s.record(f64::from(i));
        }
        // One bucket is 2^(1/128) wide; the midpoint is within half of
        // that of any sample in the bucket.
        let bound = 2f64.powf(1.0 / 128.0) / 2.0 - 0.49;
        for (q, exact) in [(0.5, 5000.0), (0.9, 9000.0), (0.95, 9500.0), (0.99, 9900.0)] {
            let got = s.quantile(q);
            let rel = (got - exact).abs() / exact;
            assert!(rel <= bound + 1e-4, "q{q}: {got} vs {exact} (rel {rel})");
        }
        assert_eq!(s.quantile(0.0), 1.0, "q0 clamps to the exact min");
        assert_eq!(s.quantile(1.0), 10_000.0, "q1 clamps to the exact max");
    }

    #[test]
    fn single_sample_sketch_is_exact_everywhere() {
        let mut s = QuantileSketch::new();
        s.record(1234.5);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(s.quantile(q), 1234.5, "q={q}");
        }
        assert_eq!(s.percentile(50.0), 1234.5);
        let b = s.box_stats().unwrap();
        assert_eq!(
            (b.min, b.median, b.max, b.mean, b.n),
            (1234.5, 1234.5, 1234.5, 1234.5, 1)
        );
    }

    #[test]
    fn sketch_merge_equals_union_and_is_order_independent() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64) * 7.25 + 0.5).collect();
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, whole, "merge must equal sketching the union");
        assert_eq!(ba, whole, "merge must be commutative");
    }

    #[test]
    fn sketch_merge_rejects_resolution_mismatch() {
        let mut a = QuantileSketch::with_sub_bits(7);
        let e = a.merge(&QuantileSketch::with_sub_bits(5)).unwrap_err();
        assert_eq!(e.path, "quantile_sketch.sub_bits");
        assert!(e.detail.contains('7') && e.detail.contains('5'), "{e}");
    }

    #[test]
    fn sketch_reductions_build_cdf_and_histogram() {
        let mut s = QuantileSketch::new();
        for x in [0.0, 1.0, 2.0, 4.0] {
            s.record(x);
        }
        let cdf = s.cdf();
        assert_eq!(cdf.points.first().unwrap(), &(0.0, 0.25));
        assert_eq!(cdf.points.last().unwrap().1, 1.0);
        assert_eq!(cdf.fraction_at(0.0), 0.25);
        let h = s.to_histogram(0.0, 8.0, 4);
        assert_eq!(h.total, 4);
        assert_eq!(h.counts[0], 2, "0.0 and ~1.0 land in the first bin");
    }

    #[test]
    fn sketch_value_round_trip_is_exact() {
        let mut s = QuantileSketch::new();
        for i in 0..50u32 {
            s.record(f64::from(i) * 13.37 + 0.001);
        }
        s.record(f64::NAN);
        let decoded = QuantileSketch::from_value(&s.to_value()).unwrap();
        assert_eq!(decoded, s);
        // The empty sketch round-trips its non-finite min/max via null.
        let empty = QuantileSketch::new();
        assert_eq!(
            QuantileSketch::from_value(&empty.to_value()).unwrap(),
            empty
        );
        // Decode diagnostics name the field.
        let e = QuantileSketch::from_value(&Value::Object(vec![])).unwrap_err();
        assert!(e.contains("quantile_sketch.sub_bits"), "{e}");
    }
}
