//! Statistical summaries used by the experiment harness: five-number
//! box-plot summaries (the paper's Figures 3 and 16), CDFs (Figure 14),
//! means with confidence intervals (Figure 4), and histograms.

use serde::Serialize;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolation percentile (`q` in `[0, 100]`) of an unsorted slice.
/// Returns 0 for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&sorted, q)
}

/// Percentile of an already-sorted slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-number summary plus mean that the paper's box plots show:
/// min, 25th percentile, median, 75th percentile, max, and the mean circle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BoxStats {
    /// Smallest sample (bottom whisker).
    pub min: f64,
    /// 25th percentile (box bottom).
    pub q1: f64,
    /// 50th percentile (the notch).
    pub median: f64,
    /// 75th percentile (box top).
    pub q3: f64,
    /// Largest sample (top whisker).
    pub max: f64,
    /// Arithmetic mean (the circle marker in the paper's plots).
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Compute from an unsorted sample. Returns `None` for an empty sample.
    pub fn from_samples(xs: &[f64]) -> Option<BoxStats> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in BoxStats input"));
        Some(BoxStats {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: sorted[sorted.len() - 1],
            mean: mean(&sorted),
            n: sorted.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Mean and a 95% normal-approximation confidence interval half-width,
/// as plotted in the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MeanCi {
    /// Arithmetic mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Sample count.
    pub n: usize,
}

impl MeanCi {
    /// Compute from a sample; `ci95` is 0 for n < 2.
    pub fn from_samples(xs: &[f64]) -> MeanCi {
        let n = xs.len();
        let m = mean(xs);
        let ci = if n < 2 {
            0.0
        } else {
            // Sample (n-1) std error with z = 1.96.
            let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            1.96 * (var / n as f64).sqrt()
        };
        MeanCi {
            mean: m,
            ci95: ci,
            n,
        }
    }
}

/// An empirical CDF: sorted values with cumulative fractions.
#[derive(Debug, Clone, Serialize)]
pub struct Cdf {
    /// `(value, fraction_of_samples <= value)` pairs in ascending value order.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Build from an unsorted sample.
    pub fn from_samples(xs: &[f64]) -> Cdf {
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        let n = sorted.len() as f64;
        let points = sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect();
        Cdf { points }
    }

    /// Fraction of samples `<= x` (0 for an empty CDF).
    pub fn fraction_at(&self, x: f64) -> f64 {
        match self.points.iter().rposition(|&(v, _)| v <= x) {
            Some(i) => self.points[i].1,
            None => 0.0,
        }
    }

    /// Smallest value with cumulative fraction `>= p` (the p-quantile).
    pub fn quantile(&self, p: f64) -> Option<f64> {
        self.points.iter().find(|&&(_, f)| f >= p).map(|&(v, _)| v)
    }
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range clamping.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// Inclusive lower bound of the range.
    pub lo: f64,
    /// Exclusive upper bound of the range.
    pub hi: f64,
    /// Per-bucket observation counts.
    pub counts: Vec<u64>,
    /// Total observations recorded (including clamped ones).
    pub total: u64,
    /// NaN observations rejected by [`Histogram::record`]. NaN fails
    /// both range comparisons and `as usize` saturates it to 0, so the
    /// old behaviour silently inflated bucket 0; rejected samples are
    /// counted here instead of disappearing.
    pub rejected_nan: u64,
}

impl Histogram {
    /// Create with `bins` equal-width buckets. Panics if `bins == 0` or the
    /// range is empty.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo, "histogram needs a non-empty range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            rejected_nan: 0,
        }
    }

    /// Record one observation; values outside `[lo, hi)` clamp to the
    /// boundary buckets. NaN is rejected (counted in
    /// [`Histogram::rejected_nan`], not in any bucket or `total`).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            self.rejected_nan += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// `(bucket_midpoint, count)` pairs.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(percentile(&xs, 25.0), 1.75);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -10.0), 1.0);
        assert_eq!(percentile(&xs, 200.0), 2.0);
    }

    #[test]
    fn box_stats_on_known_sample() {
        let xs = [7.0, 1.0, 3.0, 5.0, 9.0];
        let b = BoxStats::from_samples(&xs).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.max, 9.0);
        assert_eq!(b.mean, 5.0);
        assert_eq!(b.n, 5);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.iqr(), 4.0);
        assert!(BoxStats::from_samples(&[]).is_none());
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let small = MeanCi::from_samples(&[1.0, 3.0]);
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 3.0 })
            .collect();
        let large = MeanCi::from_samples(&xs);
        assert_eq!(small.mean, 2.0);
        assert_eq!(large.mean, 2.0);
        assert!(large.ci95 < small.ci95);
        assert_eq!(MeanCi::from_samples(&[5.0]).ci95, 0.0);
    }

    #[test]
    fn cdf_fractions() {
        let c = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(2.0), 0.5);
        assert_eq!(c.fraction_at(10.0), 1.0);
        assert_eq!(c.quantile(0.5), Some(2.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
    }

    #[test]
    fn histogram_clamps_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-1.0); // clamps to first bucket
        h.record(0.5);
        h.record(9.9);
        h.record(100.0); // clamps to last bucket
        assert_eq!(h.total, 4);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[4], 2);
        let b = h.buckets();
        assert_eq!(b.len(), 5);
        assert!((b[0].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_nan_with_counter() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(f64::NAN);
        h.record(-f64::NAN);
        h.record(0.5);
        assert_eq!(h.rejected_nan, 2, "NaN must be counted as rejected");
        assert_eq!(h.total, 1, "NaN must not count as an observation");
        assert_eq!(h.counts[0], 1, "NaN must not inflate bucket 0");
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }
}
