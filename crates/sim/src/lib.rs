//! # spdyier-sim
//!
//! Deterministic discrete-event simulation (DES) engine underpinning the
//! *"Towards a SPDY'ier Mobile Web?"* reproduction testbed.
//!
//! This crate is deliberately tiny and dependency-light; everything above it
//! (links, TCP, RRC state machines, browsers, proxies) is built out of four
//! primitives:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulated clock;
//! * [`EventQueue`] — chronological, FIFO-stable, cancellable event queue;
//! * [`DetRng`] — a forkable deterministic random stream so that protocol
//!   A/B comparisons see identical "network weather";
//! * [`stats`] / [`series`] — the reductions the paper's figures need
//!   (box plots, CDFs, confidence intervals, per-second bins, burst
//!   detection).
//!
//! ## Example
//!
//! ```
//! use spdyier_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(20), "timeout");
//! q.schedule(SimTime::from_millis(10), "packet");
//! let (t, what) = q.pop().unwrap();
//! assert_eq!((t, what), (SimTime::from_millis(10), "packet"));
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod queue;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use queue::{EventId, EventQueue};
pub use rng::DetRng;
pub use series::{EventMarks, OptionSeries, TimeSeries};
pub use stats::{BoxStats, Cdf, Histogram, MeanCi, MergeError, QuantileSketch};
pub use time::{SimDuration, SimTime};
