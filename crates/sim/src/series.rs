//! Time-series recorders.
//!
//! The paper's congestion-window traces (Figs. 10–12, 17), per-second
//! throughput bins (Fig. 9), and retransmission marks (Figs. 11, 13) are all
//! `(time, value)` series captured during a run. [`TimeSeries`] records them
//! and [`TimeSeries::bin_sum`]/[`TimeSeries::bin_last`] reduce them to fixed
//! intervals for reporting.

use crate::time::{SimDuration, SimTime};
use serde::Serialize;

/// An append-only `(time, value)` series. Times must be non-decreasing,
/// which the DES driver guarantees by construction.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TimeSeries {
    points: Vec<(SimTimeRepr, f64)>,
}

/// Serialisable time representation (microseconds).
pub type SimTimeRepr = u64;

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append a sample at `t`.
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.points
                .last()
                .is_none_or(|&(last, _)| last <= t.as_micros()),
            "TimeSeries times must be non-decreasing"
        );
        self.points.push((t.as_micros(), value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate `(SimTime, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points
            .iter()
            .map(|&(t, v)| (SimTime::from_micros(t), v))
    }

    /// The subset of samples with `start <= t < end`.
    pub fn window(&self, start: SimTime, end: SimTime) -> Vec<(SimTime, f64)> {
        self.iter()
            .filter(|&(t, _)| t >= start && t < end)
            .collect()
    }

    /// Sum of sample values per fixed-width bin over `[0, horizon)`.
    ///
    /// Bin `i` covers `[i*width, (i+1)*width)`. Used for Fig. 9's
    /// bytes-per-second aggregation.
    pub fn bin_sum(&self, width: SimDuration, horizon: SimTime) -> Vec<f64> {
        let w = width.as_micros().max(1);
        let n = horizon.as_micros().div_ceil(w);
        let mut bins = vec![0.0; n as usize];
        for &(t, v) in &self.points {
            if t >= horizon.as_micros() {
                break;
            }
            bins[(t / w) as usize] += v;
        }
        bins
    }

    /// Last sample value in each fixed-width bin (carrying the previous
    /// bin's value forward through empty bins; `fill` seeds bins before the
    /// first sample). Used for step-wise traces like cwnd.
    pub fn bin_last(&self, width: SimDuration, horizon: SimTime, fill: f64) -> Vec<f64> {
        let w = width.as_micros().max(1);
        let n = horizon.as_micros().div_ceil(w) as usize;
        let mut bins = vec![f64::NAN; n];
        for &(t, v) in &self.points {
            if t >= horizon.as_micros() {
                break;
            }
            bins[(t / w) as usize] = v;
        }
        let mut last = fill;
        for b in bins.iter_mut() {
            if b.is_nan() {
                *b = last;
            } else {
                last = *b;
            }
        }
        bins
    }

    /// Maximum sample value, or `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Mean of the sample values (0 when empty).
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }
}

/// An append-only `(time, Option<value>)` series for quantities that can
/// be genuinely *unset* (e.g. TCP's slow-start threshold before the first
/// loss). Serializes missing values as JSON `null`, so consumers can't
/// mistake "unset" for a real sample.
#[derive(Debug, Clone, Default, Serialize)]
pub struct OptionSeries {
    points: Vec<(SimTimeRepr, Option<f64>)>,
}

impl OptionSeries {
    /// Create an empty series.
    pub fn new() -> OptionSeries {
        OptionSeries::default()
    }

    /// Append a sample (or an explicit "unset") at `t`.
    pub fn push(&mut self, t: SimTime, value: Option<f64>) {
        debug_assert!(
            self.points
                .last()
                .is_none_or(|&(last, _)| last <= t.as_micros()),
            "OptionSeries times must be non-decreasing"
        );
        self.points.push((t.as_micros(), value));
    }

    /// Number of samples (set or unset).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate `(SimTime, Option<value>)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, Option<f64>)> + '_ {
        self.points
            .iter()
            .map(|&(t, v)| (SimTime::from_micros(t), v))
    }

    /// Collapse to a [`TimeSeries`] for display, substituting `unset` for
    /// missing values. Plot-only: the substitution is explicit at the call
    /// site instead of baked into the recorded data.
    pub fn to_series(&self, unset: f64) -> TimeSeries {
        let mut out = TimeSeries::new();
        for (t, v) in self.iter() {
            out.push(t, v.unwrap_or(unset));
        }
        out
    }
}

/// A recorder of discrete event instants (e.g. retransmissions) that also
/// supports burst analysis.
#[derive(Debug, Clone, Default, Serialize)]
pub struct EventMarks {
    times: Vec<SimTimeRepr>,
}

impl EventMarks {
    /// Create an empty recorder.
    pub fn new() -> EventMarks {
        EventMarks::default()
    }

    /// Record one occurrence at `t`.
    pub fn mark(&mut self, t: SimTime) {
        debug_assert!(
            self.times.last().is_none_or(|&last| last <= t.as_micros()),
            "EventMarks times must be non-decreasing"
        );
        self.times.push(t.as_micros());
    }

    /// Total occurrences.
    pub fn count(&self) -> usize {
        self.times.len()
    }

    /// Occurrence instants.
    pub fn times(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.times.iter().map(|&t| SimTime::from_micros(t))
    }

    /// Occurrences within `[start, end)`.
    pub fn count_in(&self, start: SimTime, end: SimTime) -> usize {
        self.times().filter(|&t| t >= start && t < end).count()
    }

    /// Group occurrences into bursts: a mark within `gap` of the previous
    /// mark extends the current burst. Returns `(burst_start, count)`.
    pub fn bursts(&self, gap: SimDuration) -> Vec<(SimTime, usize)> {
        let mut out: Vec<(SimTime, usize)> = Vec::new();
        let mut prev: Option<SimTime> = None;
        for t in self.times() {
            match (prev, out.last_mut()) {
                (Some(p), Some((_, n))) if t.saturating_since(p) <= gap => *n += 1,
                _ => out.push((t, 1)),
            }
            prev = Some(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn push_and_iter() {
        let mut s = TimeSeries::new();
        s.push(t(1), 10.0);
        s.push(t(2), 20.0);
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(t(1), 10.0), (t(2), 20.0)]);
    }

    #[test]
    fn window_selects_half_open_range() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i * 100), i as f64);
        }
        let w = s.window(t(200), t(500));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], (t(200), 2.0));
        assert_eq!(w[2], (t(400), 4.0));
    }

    #[test]
    fn bin_sum_accumulates() {
        let mut s = TimeSeries::new();
        s.push(t(100), 1.0);
        s.push(t(900), 2.0);
        s.push(t(1100), 4.0);
        s.push(t(5000), 8.0); // beyond horizon, ignored
        let bins = s.bin_sum(SimDuration::from_secs(1), SimTime::from_secs(3));
        assert_eq!(bins, vec![3.0, 4.0, 0.0]);
    }

    #[test]
    fn bin_last_carries_forward() {
        let mut s = TimeSeries::new();
        s.push(t(500), 10.0);
        s.push(t(2500), 20.0);
        let bins = s.bin_last(SimDuration::from_secs(1), SimTime::from_secs(4), 0.0);
        assert_eq!(bins, vec![10.0, 10.0, 20.0, 20.0]);
    }

    #[test]
    fn bin_last_fill_before_first_sample() {
        let mut s = TimeSeries::new();
        s.push(t(2500), 7.0);
        let bins = s.bin_last(SimDuration::from_secs(1), SimTime::from_secs(3), 1.0);
        assert_eq!(bins, vec![1.0, 1.0, 7.0]);
    }

    #[test]
    fn max_and_mean() {
        let mut s = TimeSeries::new();
        assert_eq!(s.max_value(), None);
        assert_eq!(s.mean_value(), 0.0);
        s.push(t(1), 3.0);
        s.push(t(2), 9.0);
        assert_eq!(s.max_value(), Some(9.0));
        assert_eq!(s.mean_value(), 6.0);
    }

    #[test]
    fn option_series_preserves_unset_and_converts_for_display() {
        let mut s = OptionSeries::new();
        s.push(t(1), None);
        s.push(t(2), Some(8.0));
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(t(1), None), (t(2), Some(8.0))]);
        let display = s.to_series(999.0);
        let d: Vec<_> = display.iter().collect();
        assert_eq!(d, vec![(t(1), 999.0), (t(2), 8.0)]);
    }

    #[test]
    fn marks_count_and_range() {
        let mut m = EventMarks::new();
        m.mark(t(100));
        m.mark(t(200));
        m.mark(t(5000));
        assert_eq!(m.count(), 3);
        assert_eq!(m.count_in(t(0), t(1000)), 2);
        assert_eq!(m.count_in(t(200), t(5000)), 1, "half-open interval");
    }

    #[test]
    fn bursts_group_nearby_marks() {
        let mut m = EventMarks::new();
        m.mark(t(0));
        m.mark(t(50));
        m.mark(t(90));
        m.mark(t(10_000)); // a second burst much later
        let b = m.bursts(SimDuration::from_millis(200));
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], (t(0), 3));
        assert_eq!(b[1], (t(10_000), 1));
    }
}
