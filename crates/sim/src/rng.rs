//! Deterministic random number generation.
//!
//! All stochastic elements of the testbed (latency jitter, response-size
//! noise, page-visit order, loss) draw from a [`DetRng`] seeded from a single
//! experiment seed. Sub-components receive *forked* streams labelled by name
//! so that adding a consumer never perturbs the draws seen by another — the
//! property that makes A/B protocol comparisons ("same network weather for
//! HTTP and SPDY") meaningful.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG stream.
pub struct DetRng {
    inner: SmallRng,
    seed: u64,
}

impl std::fmt::Debug for DetRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetRng").field("seed", &self.seed).finish()
    }
}

/// SplitMix64 finalizer — mixes seed material into well-distributed words.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stable 64-bit FNV-1a hash of a label, for named sub-streams.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl DetRng {
    /// Create the root stream for an experiment seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fork an independent sub-stream identified by `label`.
    ///
    /// Forking is a pure function of `(self.seed, label)` — it does not
    /// advance this stream, so the order in which forks are taken does not
    /// matter.
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng::new(splitmix64(self.seed ^ fnv1a(label)))
    }

    /// Fork an independent sub-stream identified by a label and an index
    /// (e.g. one stream per run, per site, per connection).
    pub fn fork_indexed(&self, label: &str, index: u64) -> DetRng {
        DetRng::new(splitmix64(
            self.seed ^ fnv1a(label) ^ splitmix64(index.wrapping_add(1)),
        ))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponentially distributed draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; 1 - U avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Normal draw via Box–Muller (single value; the pair's twin is dropped
    /// to keep the stream consumption pattern simple and stable).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal draw parameterised by the *target* mean and the sigma of
    /// the underlying normal. Used for heavy-tailed latency/size noise.
    pub fn lognormal_mean(&mut self, mean: f64, sigma: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) => solve for mu.
        let mu = mean.ln() - sigma * sigma / 2.0;
        (mu + sigma * self.normal(0.0, 1.0)).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element; `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_order_independent() {
        let root = DetRng::new(7);
        let mut a1 = root.fork("alpha");
        let mut b1 = root.fork("beta");
        // Recreate in the opposite order — identical streams.
        let root2 = DetRng::new(7);
        let mut b2 = root2.fork("beta");
        let mut a2 = root2.fork("alpha");
        for _ in 0..32 {
            assert_eq!(a1.next_u64(), a2.next_u64());
            assert_eq!(b1.next_u64(), b2.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_label() {
        let root = DetRng::new(7);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        assert_ne!(a.next_u64(), b.next_u64());
        let mut i0 = root.fork_indexed("run", 0);
        let mut i1 = root.fork_indexed("run", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
        assert_eq!(r.uniform_range(5.0, 5.0), 5.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = DetRng::new(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exponential(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean} too far from 10");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn normal_moments_close() {
        let mut r = DetRng::new(6);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.2);
    }

    #[test]
    fn lognormal_mean_close() {
        let mut r = DetRng::new(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.lognormal_mean(14.0, 0.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 14.0).abs() < 0.5, "mean {mean} too far from 14");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(9);
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "shuffle moved something");
    }

    #[test]
    fn choose_on_empty_and_nonempty() {
        let mut r = DetRng::new(10);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let one = [42u8];
        assert_eq!(r.choose(&one), Some(&42));
    }
}
