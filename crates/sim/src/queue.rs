//! The discrete-event queue.
//!
//! A priority queue of `(SimTime, E)` pairs with stable FIFO ordering for
//! events scheduled at the same instant, plus O(1) lazy cancellation — the
//! combination every protocol timer implementation needs.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

#[derive(PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earlier time first; ties broken by insertion order (seq) so that
        // same-instant events fire in the order they were scheduled.
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
///
/// Events of type `E` are scheduled for a [`SimTime`] and popped in
/// chronological order. Scheduling returns an [`EventId`] that can cancel the
/// event later (lazy cancellation: the heap entry is skipped at pop time).
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry>>,
    live: HashMap<u64, E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `time`. Returns a handle for cancellation.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq }));
        self.live.insert(seq, event);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns the event if it had not
    /// yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        self.live.remove(&id.0)
    }

    /// True if the event is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.live.contains_key(&id.0)
    }

    /// The time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the next live event in chronological (then FIFO) order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse(entry) = self.heap.pop()?;
        let event = self
            .live
            .remove(&entry.seq)
            .expect("skip_cancelled guarantees the head entry is live");
        Some((entry.time, event))
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.live.contains_key(&entry.seq) {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.is_pending(a));
        assert_eq!(q.cancel(a), Some("a"));
        assert!(!q.is_pending(a));
        assert_eq!(q.cancel(a), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        let _ = b;
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn empty_and_len_track_live_events() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        let id = q.schedule(t(1), 7);
        assert_eq!(q.len(), 1);
        q.cancel(id);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(5), 2);
        q.schedule(t(7), 3);
        assert_eq!(q.pop(), Some((t(5), 2)));
        q.schedule(t(6), 4);
        assert_eq!(q.pop(), Some((t(6), 4)));
        assert_eq!(q.pop(), Some((t(7), 3)));
    }
}
