//! The discrete-event queue.
//!
//! A priority queue of `(SimTime, E)` pairs with stable FIFO ordering for
//! events scheduled at the same instant, plus O(log n) *in-place*
//! cancellation — the combination every protocol timer implementation
//! needs. Events live in a free-list slab and the heap stores slot
//! indices with back-pointers, so a connection that cancels and
//! reschedules its RTO timer millions of times reuses the same handful
//! of slots instead of growing the heap without bound (the failure mode
//! of the earlier lazy-cancellation design, where a cancelled entry was
//! only reclaimed once it surfaced at the head).

use crate::time::SimTime;

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// The handle is a generation-tagged slot index: the low 32 bits name a
/// slab slot, the high 32 bits carry the generation the slot had when
/// the event was scheduled. Slots are recycled, generations are not —
/// a stale handle (its event fired or was cancelled, and the slot has
/// since been reused) fails the generation check and behaves exactly
/// like a cancelled id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> EventId {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Free-list terminator for [`Slot::pos_or_next`].
const NIL: u32 = u32::MAX;

/// One slab slot. Live slots hold the event plus its heap position;
/// free slots chain into the free list through `pos_or_next`.
struct Slot<E> {
    /// Bumped every time the slot is released, invalidating old handles.
    gen: u32,
    /// Live: index of this slot's entry in `heap`. Free: next free slot
    /// (or [`NIL`]).
    pos_or_next: u32,
    /// Scheduled instant (live slots only).
    time: SimTime,
    /// Insertion order, the same-instant FIFO tiebreaker (live only).
    seq: u64,
    /// `Some` while live, `None` while free.
    event: Option<E>,
}

/// A deterministic discrete-event queue.
///
/// Events of type `E` are scheduled for a [`SimTime`] and popped in
/// chronological order; events scheduled at the same instant pop in the
/// order they were scheduled. Scheduling returns an [`EventId`] that can
/// cancel the event later; cancellation removes the heap entry in place
/// and returns the slot to the free list, so internal capacity tracks
/// the *live* event count, not the schedule/cancel churn.
pub struct EventQueue<E> {
    /// Slot slab; never shrinks, but never grows past peak liveness.
    slots: Vec<Slot<E>>,
    /// Head of the free-slot list ([`NIL`] when all slots are live).
    free_head: u32,
    /// Min-heap of slot indices ordered by `(time, seq)`.
    heap: Vec<u32>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_head: NIL,
            heap: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `time`. Returns a handle for cancellation.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if self.free_head != NIL {
            let slot = self.free_head as usize;
            let s = &mut self.slots[slot];
            self.free_head = s.pos_or_next;
            s.time = time;
            s.seq = seq;
            s.event = Some(event);
            slot
        } else {
            assert!(self.slots.len() < NIL as usize, "event slab exhausted");
            self.slots.push(Slot {
                gen: 0,
                pos_or_next: NIL,
                time,
                seq,
                event: Some(event),
            });
            self.slots.len() - 1
        };
        let pos = self.heap.len();
        self.heap.push(slot as u32);
        self.slots[slot].pos_or_next = pos as u32;
        self.sift_up(pos);
        EventId::new(slot as u32, self.slots[slot].gen)
    }

    /// Cancel a previously scheduled event. Returns the event if it had not
    /// yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        if !self.is_pending(id) {
            return None;
        }
        let slot = id.slot();
        let pos = self.slots[slot].pos_or_next as usize;
        self.remove_heap_entry(pos);
        Some(self.release(slot))
    }

    /// True if the event is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot())
            .is_some_and(|s| s.gen == id.gen() && s.event.is_some())
    }

    /// The time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.heap
            .first()
            .map(|&slot| self.slots[slot as usize].time)
    }

    /// Pop the next live event in chronological (then FIFO) order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let slot = *self.heap.first()? as usize;
        self.remove_heap_entry(0);
        let time = self.slots[slot].time;
        Some((time, self.release(slot)))
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// How many slab slots the queue has ever allocated. Tracks *peak*
    /// concurrent liveness, not schedule/cancel churn — the regression
    /// surface for the unbounded-growth bug the slab design fixes.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Take the event out of `slot` and push the slot onto the free list.
    fn release(&mut self, slot: usize) -> E {
        let s = &mut self.slots[slot];
        let event = s.event.take().expect("releasing a free slot");
        s.gen = s.gen.wrapping_add(1);
        s.pos_or_next = self.free_head;
        self.free_head = slot as u32;
        event
    }

    /// Remove the heap entry at `pos`: swap-with-last, then restore the
    /// heap property from `pos` in whichever direction is violated.
    fn remove_heap_entry(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.heap.pop();
        if pos < last {
            self.slots[self.heap[pos] as usize].pos_or_next = pos as u32;
            // The moved entry may be out of order either way relative to
            // its new neighbourhood; only one of these will act.
            let moved_up = self.sift_up(pos);
            if !moved_up {
                self.sift_down(pos);
            }
        }
    }

    /// `(time, seq)` ordering key for the heap entry at `pos`.
    #[inline]
    fn key(&self, pos: usize) -> (SimTime, u64) {
        let s = &self.slots[self.heap[pos] as usize];
        (s.time, s.seq)
    }

    /// Bubble the entry at `pos` towards the root. Returns whether it moved.
    fn sift_up(&mut self, mut pos: usize) -> bool {
        let mut moved = false;
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.key(pos) >= self.key(parent) {
                break;
            }
            self.heap.swap(pos, parent);
            self.slots[self.heap[pos] as usize].pos_or_next = pos as u32;
            self.slots[self.heap[parent] as usize].pos_or_next = parent as u32;
            pos = parent;
            moved = true;
        }
        moved
    }

    /// Push the entry at `pos` towards the leaves.
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < len && self.key(right) < self.key(left) {
                child = right;
            }
            if self.key(pos) <= self.key(child) {
                break;
            }
            self.heap.swap(pos, child);
            self.slots[self.heap[pos] as usize].pos_or_next = pos as u32;
            self.slots[self.heap[child] as usize].pos_or_next = child as u32;
            pos = child;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.is_pending(a));
        assert_eq!(q.cancel(a), Some("a"));
        assert!(!q.is_pending(a));
        assert_eq!(q.cancel(a), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        let _ = b;
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn empty_and_len_track_live_events() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        let id = q.schedule(t(1), 7);
        assert_eq!(q.len(), 1);
        q.cancel(id);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(5), 2);
        q.schedule(t(7), 3);
        assert_eq!(q.pop(), Some((t(5), 2)));
        q.schedule(t(6), 4);
        assert_eq!(q.pop(), Some((t(6), 4)));
        assert_eq!(q.pop(), Some((t(7), 3)));
    }

    #[test]
    fn stale_handle_fails_generation_check() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert_eq!(q.cancel(a), Some("a"));
        // The freed slot is reused immediately; the old handle must not
        // alias the new occupant.
        let b = q.schedule(t(2), "b");
        assert!(!q.is_pending(a));
        assert!(q.is_pending(b));
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn popped_handle_goes_stale() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.is_pending(a));
        assert_eq!(q.cancel(a), None);
    }

    #[test]
    fn cancel_middle_preserves_order() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..64u32).map(|i| q.schedule(t(u64::from(i)), i)).collect();
        // Cancel every third event, including interior heap nodes.
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 1 {
                assert_eq!(q.cancel(*id), Some(i as u32));
            }
        }
        let mut last = None;
        while let Some((time, v)) = q.pop() {
            assert_ne!(v % 3, 1, "cancelled event fired");
            assert!(last.is_none_or(|l| l <= time), "pops out of order");
            last = Some(time);
        }
    }

    /// Regression: the pre-slab queue leaked one heap entry per
    /// cancel/reschedule round until the entry drifted to the head. A
    /// timer that churns (the RTO pattern) must not grow the queue.
    #[test]
    fn cancel_reschedule_churn_keeps_capacity_bounded() {
        let mut q = EventQueue::new();
        // A backdrop of live timers so the churned entry has interior
        // heap positions to land in.
        let backdrop: Vec<_> = (0..16u64).map(|i| q.schedule(t(1000 + i), 0u64)).collect();
        let mut rto = q.schedule(t(500), 1);
        for round in 0..100_000u64 {
            assert_eq!(q.cancel(rto), Some(1));
            rto = q.schedule(t(500 + round % 7), 1);
        }
        assert_eq!(q.len(), 17);
        assert!(
            q.slot_capacity() <= 18,
            "capacity {} grew with churn, not liveness",
            q.slot_capacity()
        );
        drop(backdrop);
    }
}
