//! Simulation time.
//!
//! All simulation clocks are integer **microseconds** since the start of the
//! simulation. Integer time keeps the discrete-event simulation exactly
//! deterministic: there is no floating point drift, and two events scheduled
//! for the same instant compare equal on every platform.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Add a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from a floating point number of seconds (rounded to the
    /// nearest microsecond, saturating at zero / MAX).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        let us = s * 1e6;
        if us >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(us.round() as u64)
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (used e.g. for RTO backoff clamps).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Integer division.
    #[allow(clippy::should_implement_trait)] // domain-specific saturating div
    pub fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k.max(1))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; saturates in release.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "SimTime subtraction underflow: {rhs} > {self}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "inf")
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(500);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_millis(), 750);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::MAX + SimDuration::from_secs(1),
            SimTime::MAX,
            "time addition saturates"
        );
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(1).checked_since(SimTime::from_secs(2)),
            None
        );
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(0.0015);
        assert_eq!(d.as_micros(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mul_and_div() {
        let d = SimDuration::from_millis(200);
        assert_eq!(d.saturating_mul(3), SimDuration::from_millis(600));
        assert_eq!(d.div(4), SimDuration::from_millis(50));
        assert_eq!(d.div(0), d, "div by zero clamps divisor to 1");
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(300));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }
}
