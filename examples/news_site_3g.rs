//! Load the paper's largest news site (site 15: 323 objects across ~85
//! domains) over 3G and dissect *where the time goes* per object — the
//! Fig. 5 breakdown — under HTTP's connection pool vs SPDY's multiplexing.
//!
//! ```text
//! cargo run --release --example news_site_3g
//! ```

use spdyier::browser::StepAverages;
use spdyier::core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode};
use spdyier::sim::SimDuration;
use spdyier::workload::VisitSchedule;

fn main() {
    println!("Site 15 (News): 323 objects, ~85 domains, 1.7 MB — the stress test.\n");
    for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
        let cfg = ExperimentConfig::paper_3g(protocol, 3)
            .with_network(NetworkKind::Umts3G)
            .with_schedule(VisitSchedule::sequential(
                vec![15],
                SimDuration::from_secs(60),
            ));
        let result = run_experiment(cfg);
        let v = &result.visits[0];
        let avg = StepAverages::from_timings(&v.object_timings);
        println!("== {} ==", result.protocol);
        println!(
            "  page load time: {:.1} s ({} objects)",
            v.plt_ms / 1e3,
            v.object_count
        );
        println!(
            "  avg object: init {:>5.0} ms | send {:>3.0} ms | wait {:>5.0} ms | recv {:>5.0} ms",
            avg.init_ms, avg.send_ms, avg.wait_ms, avg.recv_ms
        );
        // Discovery waves: when did requests go out?
        let mut req_ms: Vec<f64> = v
            .object_timings
            .iter()
            .filter_map(|t| t.requested)
            .map(|t| t.saturating_since(v.start).as_secs_f64() * 1e3)
            .collect();
        req_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let waves = 1 + req_ms.windows(2).filter(|w| w[1] - w[0] > 250.0).count();
        println!(
            "  {} requests issued across {} wave(s), last at {:.1} s",
            req_ms.len(),
            waves,
            req_ms.last().copied().unwrap_or(0.0) / 1e3
        );
        println!("  connections opened: {}\n", result.connections_opened);
    }
    println!(
        "Expected shape (paper Fig. 5): HTTP pays *init* (handshakes and pool waits);\n\
         SPDY pays *wait* (responses queue at the proxy behind one congestion window)."
    );
}
