//! Sweep the paper's §6 mitigation proposals on the same two-site 3G
//! workload and rank them.
//!
//! ```text
//! cargo run --release --example proxy_fix_ablation
//! ```

use spdyier::core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode};
use spdyier::sim::{DetRng, SimDuration};
use spdyier::tcp::CcAlgorithm;
use spdyier::workload::VisitSchedule;

type Tweak = Box<dyn Fn(&mut ExperimentConfig)>;

fn main() {
    let variants: Vec<(&str, Tweak)> = vec![
        ("SPDY baseline", Box::new(|_| {})),
        (
            "reset RTT after idle (§6.2.1)",
            Box::new(|cfg| cfg.tcp.reset_rtt_after_idle = true),
        ),
        (
            "no slow-start after idle (§6.2.2)",
            Box::new(|cfg| cfg.tcp.slow_start_after_idle = false),
        ),
        (
            "TCP Reno (§6.2.3)",
            Box::new(|cfg| cfg.tcp.cc = CcAlgorithm::Reno),
        ),
        (
            "no metrics cache (§6.2.4)",
            Box::new(|cfg| cfg.cache_metrics = false),
        ),
        (
            "20 SPDY connections (§6.1)",
            Box::new(|cfg| {
                cfg.protocol = ProtocolMode::Spdy {
                    connections: 20,
                    late_binding: false,
                }
            }),
        ),
        (
            "20 conns + late binding (§6.1)",
            Box::new(|cfg| {
                cfg.protocol = ProtocolMode::Spdy {
                    connections: 20,
                    late_binding: true,
                }
            }),
        ),
        (
            "radio pinned in DCH (Fig. 14)",
            Box::new(|cfg| {
                cfg.network = NetworkKind::Umts3GPinned;
                cfg.keepalive_ping = Some(SimDuration::from_secs(3));
            }),
        ),
    ];

    println!("Mitigation sweep over sites 7 + 12, 3 seeds, SPDY on 3G:\n");
    let mut results = Vec::new();
    for (name, tweak) in &variants {
        let mut plt = 0.0;
        let mut rtx = 0u64;
        let seeds = 3u64;
        for seed in 0..seeds {
            let mut sched_rng = DetRng::new(seed + 9);
            let _ = &mut sched_rng;
            let mut cfg = ExperimentConfig::paper_3g(ProtocolMode::spdy(), seed)
                .with_network(NetworkKind::Umts3G)
                .with_schedule(VisitSchedule::sequential(
                    vec![7, 12],
                    SimDuration::from_secs(60),
                ));
            tweak(&mut cfg);
            let r = run_experiment(cfg);
            plt += r.visits.iter().map(|v| v.plt_ms).sum::<f64>()
                / (r.visits.len().max(1) as f64 * seeds as f64);
            rtx += r.total_retransmissions / seeds;
        }
        results.push((*name, plt, rtx));
    }
    let baseline = results[0].1;
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!(
        "{:<34} {:>12} {:>9} {:>9}",
        "variant", "mean PLT", "vs base", "rtx"
    );
    for (name, plt, rtx) in &results {
        println!(
            "{:<34} {:>9.0} ms {:>+8.1}% {:>9}",
            name,
            plt,
            (plt - baseline) / baseline * 100.0,
            rtx
        );
    }
    println!(
        "\nReading the sweep: pinning the radio in DCH dominates (no promotions at all);\n\
         resetting the RTT estimate (§6.2.1) eliminates the spurious retransmissions —\n\
         the paper's stated goal — while PLT stays near baseline at this small scale;\n\
         multiplying connections barely moves anything, exactly as §6.1 reports."
    );
}
