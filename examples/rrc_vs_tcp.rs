//! The paper's root cause, isolated: watch a single TCP connection's RTO
//! collide with the 3G RRC promotion delay — then apply the paper's
//! §6.2.1 fix (reset the RTT estimate after idle) and watch it vanish.
//!
//! This example drives the sans-IO TCP and RRC machines directly (no
//! browser, no proxy), so every event is visible.
//!
//! ```text
//! cargo run --release --example rrc_vs_tcp
//! ```

use spdyier::cellular::{Rrc3g, Rrc3gConfig};
use spdyier::net::{Link, LinkConfig, LinkVerdict};
use spdyier::payload::Payload;
use spdyier::sim::{DetRng, SimDuration, SimTime};
use spdyier::tcp::{Segment, TcpConfig, TcpConnection};

/// Drive sender→receiver over an RRC-gated link until quiescent. Returns
/// the retransmissions and RTO firings of the *post-idle* phase only.
fn episode(reset_rtt_after_idle: bool) -> (u64, u64) {
    let cfg = TcpConfig {
        reset_rtt_after_idle,
        ..TcpConfig::default()
    };
    let mut sender = TcpConnection::client(cfg);
    let mut receiver = TcpConnection::server(TcpConfig::default());
    let mut radio = Rrc3g::new(Rrc3gConfig::default());
    let mut link = Link::new(LinkConfig::from_mbps(6.0, 75));
    let mut rng = DetRng::new(1);

    let mut now = SimTime::ZERO;
    let mut wire: Vec<(SimTime, bool, Segment)> = Vec::new();
    sender.connect(now);
    // Phase 1: transfer 200 KB to converge the RTT estimate (radio active).
    sender.write(Payload::synthetic(200_000));
    // Phase 2 trigger: after 30 s idle (radio demoted to IDLE), send again.
    let mut phase2_sent = false;
    let mut phase1_stats = (0u64, 0u64);

    for _ in 0..1_000_000 {
        while let Some(seg) = sender.poll_transmit(now) {
            let gate = radio.gate(now, seg.wire_size());
            match link.send(gate.max(now), seg.wire_size(), &mut rng) {
                LinkVerdict::Deliver(at) => {
                    radio.note_activity(at, seg.wire_size());
                    wire.push((at, false, seg));
                }
                LinkVerdict::Drop => {}
            }
        }
        while let Some(seg) = receiver.poll_transmit(now) {
            let gate = radio.gate(now, seg.wire_size());
            match link.send(gate.max(now), seg.wire_size(), &mut rng) {
                LinkVerdict::Deliver(at) => {
                    radio.note_activity(at, seg.wire_size());
                    wire.push((at, true, seg));
                }
                LinkVerdict::Drop => {}
            }
        }
        while receiver.read().is_some() {}
        let next_wire = wire.iter().map(|(t, _, _)| *t).min();
        let next_timer = [sender.next_timer(), receiver.next_timer()]
            .into_iter()
            .flatten()
            .min();
        let next = match (next_wire, next_timer) {
            (Some(w), Some(t)) => w.min(t),
            (Some(w), None) => w,
            (None, Some(t)) => t,
            (None, None) => {
                if phase2_sent {
                    break;
                }
                // Idle 30 s: the radio demotes DCH→FACH→IDLE.
                now += SimDuration::from_secs(30);
                println!(
                    "  [{:>6.1}s] idle over; radio is {}; sender RTO is {}",
                    now.as_secs_f64(),
                    radio_label(&radio, now),
                    sender.rto()
                );
                let s = sender.stats();
                phase1_stats = (s.retransmissions, s.timeouts);
                sender.write(Payload::synthetic(4 * 1380));
                phase2_sent = true;
                continue;
            }
        };
        now = next.max(now);
        let mut i = 0;
        while i < wire.len() {
            if wire[i].0 <= now {
                let (_, to_sender, seg) = wire.remove(i);
                if to_sender {
                    sender.on_segment(now, seg);
                } else {
                    receiver.on_segment(now, seg);
                }
            } else {
                i += 1;
            }
        }
        sender.on_timer(now);
        receiver.on_timer(now);
    }
    let s = sender.stats();
    (
        s.retransmissions - phase1_stats.0,
        s.timeouts - phase1_stats.1,
    )
}

fn radio_label(radio: &Rrc3g, t: SimTime) -> &'static str {
    match radio.state_at(t) {
        spdyier::cellular::Rrc3gState::Idle => "IDLE",
        spdyier::cellular::Rrc3gState::Fach => "CELL_FACH",
        spdyier::cellular::Rrc3gState::Dch => "CELL_DCH",
        spdyier::cellular::Rrc3gState::Promoting => "PROMOTING",
    }
}

fn main() {
    println!("One TCP connection, one 3G radio. Transfer, go idle 30 s, transfer again.\n");
    println!("-- stock Linux behaviour (RTT estimate survives the idle period) --");
    let (rtx, timeouts) = episode(false);
    println!("  post-idle result: {rtx} retransmissions, {timeouts} RTO firings\n");
    println!("-- paper §6.2.1 fix (reset the RTT estimate after idle) --");
    let (rtx_fix, timeouts_fix) = episode(true);
    println!("  post-idle result: {rtx_fix} retransmissions, {timeouts_fix} RTO firings\n");
    assert!(
        rtx_fix < rtx,
        "the fix must remove spurious retransmissions"
    );
    println!(
        "The 2 s promotion exceeds the converged RTO (~300 ms) → spurious timeouts.\n\
         Resetting the estimate restores the initial RTO (1 s, backed off past 2 s),\n\
         so the radio wakes before the timer fires."
    );
}
