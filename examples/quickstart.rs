//! Quickstart: load three sites over 3G with both protocols and print the
//! page load times plus the cross-layer retransmission attribution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spdyier::core::analyzer::analyze;
use spdyier::core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode};
use spdyier::sim::SimDuration;
use spdyier::workload::VisitSchedule;

fn main() {
    println!("Loading sites 7 (News), 5 (Technology) and 12 (Photo Sharing) over 3G…\n");
    for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
        let cfg = ExperimentConfig::paper_3g(protocol, 7)
            .with_network(NetworkKind::Umts3G)
            .with_schedule(VisitSchedule::sequential(
                vec![7, 5, 12],
                SimDuration::from_secs(60),
            ));
        let result = run_experiment(cfg);
        println!("== {} over {} ==", result.protocol, result.network);
        for v in &result.visits {
            println!(
                "  site {:>2}: PLT {:>7.0} ms  ({} objects, {} KB){}",
                v.site,
                v.plt_ms,
                v.object_count,
                v.total_bytes / 1024,
                if v.completed {
                    ""
                } else {
                    "  [did not finish]"
                }
            );
        }
        let report = analyze(&result);
        println!(
            "  retransmissions: {} ({} promotion-correlated, {} spurious-estimate)",
            report.retransmissions, report.promotion_correlated, report.spurious_estimate
        );
        println!(
            "  RRC promotions: {}, radio energy: {:.0} mJ\n",
            report.promotions, result.energy_mj
        );
    }
    println!(
        "The paper's finding: over 3G the two protocols end up comparable — the\n\
         radio's promotion delay defeats TCP's RTT estimate for both."
    );
}
