//! Fault-injection integration tests: the testbed must stay correct —
//! every page still completes, every byte still arrives — under genuine
//! packet loss, and degrade gracefully rather than collapse.

use spdyier::core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode, RunResult};
use spdyier::net::LossModel;
use spdyier::sim::SimDuration;
use spdyier::workload::VisitSchedule;

fn run_lossy(protocol: ProtocolMode, loss: Option<LossModel>, sites: Vec<u32>) -> RunResult {
    let mut cfg = ExperimentConfig::paper_3g(protocol, 11)
        .with_network(NetworkKind::Wifi)
        .with_schedule(VisitSchedule::sequential(sites, SimDuration::from_secs(60)));
    cfg.access_loss = loss;
    run_experiment(cfg)
}

#[test]
fn pages_complete_under_one_percent_loss() {
    for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
        let r = run_lossy(protocol, Some(LossModel::Bernoulli { p: 0.01 }), vec![5, 9]);
        assert!(
            r.visits.iter().all(|v| v.completed),
            "{protocol:?} completed under 1% loss"
        );
        let (_, loss_drops) = r.downlink_drops;
        assert!(loss_drops > 0, "loss actually occurred");
    }
}

#[test]
fn pages_complete_under_five_percent_loss() {
    for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
        let r = run_lossy(protocol, Some(LossModel::Bernoulli { p: 0.05 }), vec![9]);
        assert!(
            r.visits[0].completed,
            "{protocol:?} completed the 5-object site under 5% loss"
        );
    }
}

#[test]
fn loss_slows_loads_monotonically_ish() {
    let clean = run_lossy(ProtocolMode::spdy(), None, vec![5]);
    let lossy = run_lossy(
        ProtocolMode::spdy(),
        Some(LossModel::Bernoulli { p: 0.03 }),
        vec![5],
    );
    assert!(
        lossy.visits[0].plt_ms > clean.visits[0].plt_ms,
        "3% loss must cost time: {} vs {}",
        lossy.visits[0].plt_ms,
        clean.visits[0].plt_ms
    );
}

#[test]
fn bursty_loss_is_survivable() {
    let r = run_lossy(
        ProtocolMode::spdy(),
        Some(LossModel::GilbertElliott {
            p_good_to_bad: 0.002,
            p_bad_to_good: 0.2,
            loss_good: 0.0,
            loss_bad: 0.5,
        }),
        vec![5, 12],
    );
    assert!(r.visits.iter().all(|v| v.completed), "bursty loss survived");
    assert!(r.total_retransmissions > 0, "recovery actually happened");
}

#[test]
fn genuine_loss_produces_genuine_retransmissions() {
    // Under injected loss the spurious-dominance invariant must NOT hold:
    // the analyzer correctly attributes retransmissions to real drops.
    let r = run_lossy(
        ProtocolMode::Http,
        Some(LossModel::Bernoulli { p: 0.02 }),
        vec![5, 12],
    );
    let (queue_drops, loss_drops) = r.downlink_drops;
    let drops = queue_drops + loss_drops;
    assert!(drops > 5, "drops recorded: {drops}");
    assert!(
        r.total_retransmissions as u64 >= drops / 2,
        "retransmissions repair the drops: {} rtx vs {} drops",
        r.total_retransmissions,
        drops
    );
}

#[test]
fn lossy_cellular_compounds_with_promotions() {
    let mut cfg = ExperimentConfig::paper_3g(ProtocolMode::spdy(), 13)
        .with_network(NetworkKind::Umts3G)
        .with_schedule(VisitSchedule::sequential(
            vec![9],
            SimDuration::from_secs(60),
        ));
    cfg.access_loss = Some(LossModel::Bernoulli { p: 0.02 });
    let r = run_experiment(cfg);
    assert!(r.visits[0].completed, "completes despite loss + promotions");
    assert!(!r.promotions.is_empty());
}
