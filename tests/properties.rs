//! Property-based tests over the core data structures and protocol
//! invariants, spanning crates.

use proptest::prelude::*;
use spdyier::payload::Payload;
use spdyier::sim::{DetRng, EventQueue, SimDuration, SimTime};
use spdyier::spdy::{Compressor, Decompressor};
use spdyier::tcp::buffer::{RecvBuffer, SendBuffer};
use spdyier::workload::{synthesize, SiteSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The header compressor round-trips arbitrary block sequences while
    /// both sides stay in sync.
    #[test]
    fn compressor_roundtrip(blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..600), 1..12)) {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        for block in &blocks {
            let z = c.compress(block);
            let back = d.decompress(&z).expect("in-sync stream must decode");
            prop_assert_eq!(&back[..], &block[..]);
        }
    }

    /// The receive buffer reassembles the original stream no matter how
    /// segments are sliced and reordered (with duplicates mixed in).
    #[test]
    fn recv_buffer_reassembles(
        payload in prop::collection::vec(any::<u8>(), 1..2000),
        seed in any::<u64>(),
        chunk in 1usize..97,
    ) {
        let mut segments: Vec<(u64, Vec<u8>)> = payload
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| ((i * chunk) as u64, c.to_vec()))
            .collect();
        // Shuffle deterministically and duplicate a few.
        let mut rng = DetRng::new(seed);
        let dupes: Vec<(u64, Vec<u8>)> = (0..3)
            .filter_map(|_| {
                if segments.is_empty() { None } else {
                    Some(segments[(rng.below(segments.len() as u64)) as usize].clone())
                }
            })
            .collect();
        segments.extend(dupes);
        rng.shuffle(&mut segments);
        let mut buf = RecvBuffer::new(0, 1 << 20);
        for (seq, data) in segments {
            buf.ingest(seq, Payload::from(data));
        }
        let mut out = Vec::new();
        while let Some(b) = buf.read() {
            out.extend_from_slice(&b.to_vec());
        }
        prop_assert_eq!(out, payload);
    }

    /// The send buffer returns exactly the bytes written, in order,
    /// regardless of the pull-size sequence.
    #[test]
    fn send_buffer_preserves_stream(
        writes in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 0..12),
        pulls in prop::collection::vec(1u64..512, 1..40),
    ) {
        let mut buf = SendBuffer::new();
        let mut expect = Vec::new();
        for w in &writes {
            expect.extend_from_slice(w);
            buf.write(Payload::from(w.clone()));
        }
        let mut got = Vec::new();
        for p in pulls {
            got.extend_from_slice(&buf.pull(p).to_vec());
        }
        got.extend_from_slice(&buf.pull(u64::MAX >> 1).to_vec());
        prop_assert_eq!(got, expect);
    }

    /// The event queue pops in non-decreasing time order and FIFO within a
    /// time instant.
    #[test]
    fn event_queue_orders(times in prop::collection::vec(0u64..5000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_micros(t));
            if let Some((lt, li)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(i > li, "FIFO within an instant");
                }
            }
            last = Some((at, i));
        }
    }

    /// The 3G RRC machine never gates into the past, and energy is
    /// monotone under arbitrary activity patterns.
    #[test]
    fn rrc3g_gate_and_energy_monotone(
        steps in prop::collection::vec((0u64..30_000, 40u64..5000), 1..60),
    ) {
        use spdyier::cellular::{Rrc3g, Rrc3gConfig};
        let mut m = Rrc3g::new(Rrc3gConfig::default());
        let mut now = SimTime::ZERO;
        let mut last_energy = 0.0;
        for (gap_ms, bytes) in steps {
            now += SimDuration::from_millis(gap_ms);
            let gate = m.gate(now, bytes);
            prop_assert!(gate >= now, "gate {gate} not before {now}");
            m.note_activity(gate, bytes);
            let e = m.energy_mj(gate);
            prop_assert!(e >= last_energy, "energy decreased: {e} < {last_energy}");
            last_energy = e;
            now = gate;
        }
    }

    /// Page synthesis always yields a structurally valid page for every
    /// Table 1 site and any seed.
    #[test]
    fn synthesis_always_valid(site in 1u32..=20, seed in any::<u64>()) {
        let spec = SiteSpec::by_index(site).unwrap();
        let page = synthesize(spec, &mut DetRng::new(seed));
        prop_assert!(page.validate().is_ok(), "{:?}", page.validate());
        prop_assert!(page.object_count() >= 1);
        prop_assert!(page.total_bytes() > 0);
    }

    /// Statistics: BoxStats bounds are ordered and the mean lies within
    /// them for any non-empty sample.
    #[test]
    fn box_stats_ordered(xs in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let b = spdyier::sim::BoxStats::from_samples(&xs).unwrap();
        prop_assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
        prop_assert!(b.mean >= b.min && b.mean <= b.max);
        prop_assert_eq!(b.n, xs.len());
    }

    /// CDF quantile and fraction_at are mutually consistent.
    #[test]
    fn cdf_consistency(xs in prop::collection::vec(0.0f64..1e5, 1..200), p in 0.01f64..1.0) {
        let cdf = spdyier::sim::Cdf::from_samples(&xs);
        let q = cdf.quantile(p).unwrap();
        prop_assert!(cdf.fraction_at(q) >= p - 1e-9);
    }
}

/// TCP bulk transfer delivers exactly the bytes written, under a variety of
/// latency settings (non-proptest because each case is heavier).
#[test]
fn tcp_transfer_integrity_across_latencies() {
    use spdyier::tcp::{TcpConfig, TcpConnection};
    for latency_ms in [1u64, 20, 150, 400] {
        let mut c = TcpConnection::client(TcpConfig::default());
        let mut s = TcpConnection::server(TcpConfig::default());
        c.connect(SimTime::ZERO);
        let latency = SimDuration::from_millis(latency_ms);
        let payload: Vec<u8> = (0..150_000u32).map(|i| (i % 251) as u8).collect();
        let mut now = SimTime::ZERO;
        let mut wire: Vec<(SimTime, bool, spdyier::tcp::Segment)> = Vec::new();
        c.write(Payload::from(payload.clone()));
        let mut got = Vec::new();
        for _ in 0..200_000 {
            while let Some(seg) = c.poll_transmit(now) {
                wire.push((now + latency, false, seg));
            }
            while let Some(seg) = s.poll_transmit(now) {
                wire.push((now + latency, true, seg));
            }
            while let Some(chunk) = s.read() {
                got.extend_from_slice(&chunk.to_vec());
            }
            if got.len() == payload.len() {
                break;
            }
            let next = wire
                .iter()
                .map(|(t, _, _)| *t)
                .chain(c.next_timer())
                .chain(s.next_timer())
                .min();
            let Some(next) = next else { break };
            now = next.max(now);
            let mut i = 0;
            while i < wire.len() {
                if wire[i].0 <= now {
                    let (_, to_c, seg) = wire.remove(i);
                    if to_c {
                        c.on_segment(now, seg);
                    } else {
                        s.on_segment(now, seg);
                    }
                } else {
                    i += 1;
                }
            }
            c.on_timer(now);
            s.on_timer(now);
        }
        assert_eq!(got, payload, "latency {latency_ms} ms");
    }
}

/// SPDY frames round-trip through arbitrary chunked delivery.
#[test]
fn spdy_frames_roundtrip_chunked() {
    use spdyier::spdy::{Compressor, Decompressor, Frame, FrameParser};
    let mut comp = Compressor::new();
    let decomp = Decompressor::new();
    let frames = vec![
        Frame::SynStream {
            stream_id: 1,
            priority: 2,
            fin: true,
            headers: vec![
                (":path".into(), "/a".into()),
                ("cookie".into(), "x".repeat(300)),
            ],
        },
        Frame::Ping(7),
        Frame::Data {
            stream_id: 1,
            fin: false,
            payload: Payload::from(vec![9u8; 5_000]),
        },
        Frame::SynReply {
            stream_id: 1,
            fin: false,
            headers: vec![(":status".into(), "200".into())],
        },
        Frame::WindowUpdate {
            stream_id: 1,
            delta: 1234,
        },
        Frame::Data {
            stream_id: 1,
            fin: true,
            payload: Payload::new(),
        },
        Frame::Goaway {
            last_stream_id: 1,
            status: 0,
        },
    ];
    let mut wire = Vec::new();
    for f in &frames {
        wire.extend_from_slice(&f.encode(&mut comp).to_vec());
    }
    // Deliver in awkward chunk sizes.
    for chunk_size in [1usize, 3, 7, 64, 1000] {
        let mut parser = FrameParser::new();
        let mut decomp_local = Decompressor::new();
        // Header blocks are stateful: replay the compressor for each pass.
        let mut comp_local = Compressor::new();
        let mut wire_local = Vec::new();
        for f in &frames {
            wire_local.extend_from_slice(&f.encode(&mut comp_local).to_vec());
        }
        let mut got = Vec::new();
        for chunk in wire_local.chunks(chunk_size) {
            parser.push(Payload::from(chunk.to_vec()));
            while let Some(f) = parser.next_frame(&mut decomp_local).expect("valid") {
                got.push(f);
            }
        }
        assert_eq!(got, frames, "chunk size {chunk_size}");
    }
    let _ = decomp;
    let _ = wire;
}

/// The deterministic RNG's forks are stable across process runs (golden
/// values — determinism is an API contract the experiment suite depends
/// on).
#[test]
fn rng_golden_values() {
    let root = DetRng::new(42);
    let mut a = root.fork("alpha");
    let v1 = a.next_u64();
    let mut a2 = DetRng::new(42).fork("alpha");
    assert_eq!(v1, a2.next_u64());
    // A full-stack golden: the same config twice in one process is covered
    // elsewhere; here pin the shuffle order.
    let mut order: Vec<u32> = (1..=10).collect();
    DetRng::new(7).fork("s").shuffle(&mut order);
    let again = {
        let mut o: Vec<u32> = (1..=10).collect();
        DetRng::new(7).fork("s").shuffle(&mut o);
        o
    };
    assert_eq!(order, again);
}
