//! Cross-crate protocol-stack integration without the full testbed driver:
//! SPDY sessions over real TCP pipes, HTTP proxy chains, and header
//! compression efficiency under realistic request mixes.

use spdyier::http::{HttpClientConn, HttpServerConn, Request, Response};
use spdyier::payload::Payload;
use spdyier::sim::{SimDuration, SimTime};
use spdyier::spdy::{Role, SpdyConfig, SpdyEvent, SpdySession};
use spdyier::tcp::{Segment, TcpConfig, TcpConnection};

/// A lossless in-memory TCP pipe driver.
struct Pipe {
    a: TcpConnection,
    b: TcpConnection,
    now: SimTime,
    latency: SimDuration,
    wire: Vec<(SimTime, bool, Segment)>,
}

impl Pipe {
    fn new(latency_ms: u64) -> Pipe {
        let mut a = TcpConnection::client(TcpConfig::default());
        let b = TcpConnection::server(TcpConfig::default());
        a.connect(SimTime::ZERO);
        let mut p = Pipe {
            a,
            b,
            now: SimTime::ZERO,
            latency: SimDuration::from_millis(latency_ms),
            wire: Vec::new(),
        };
        p.settle();
        assert!(p.a.is_established());
        p
    }

    /// Advance until no wire traffic or timers remain, collecting reads.
    fn settle(&mut self) -> (Vec<u8>, Vec<u8>) {
        let (mut to_a, mut to_b) = (Vec::new(), Vec::new());
        for _ in 0..200_000 {
            while let Some(seg) = self.a.poll_transmit(self.now) {
                self.wire.push((self.now + self.latency, true, seg));
            }
            while let Some(seg) = self.b.poll_transmit(self.now) {
                self.wire.push((self.now + self.latency, false, seg));
            }
            while let Some(chunk) = self.a.read() {
                to_a.extend_from_slice(&chunk.to_vec());
            }
            while let Some(chunk) = self.b.read() {
                to_b.extend_from_slice(&chunk.to_vec());
            }
            let next = self
                .wire
                .iter()
                .map(|(t, _, _)| *t)
                .chain(self.a.next_timer())
                .chain(self.b.next_timer())
                .min();
            let Some(next) = next else {
                return (to_a, to_b);
            };
            self.now = next.max(self.now);
            let mut i = 0;
            while i < self.wire.len() {
                if self.wire[i].0 <= self.now {
                    let (_, for_b, seg) = self.wire.remove(i);
                    if for_b {
                        self.b.on_segment(self.now, seg);
                    } else {
                        self.a.on_segment(self.now, seg);
                    }
                } else {
                    i += 1;
                }
            }
            self.a.on_timer(self.now);
            self.b.on_timer(self.now);
        }
        panic!("pipe did not settle");
    }
}

#[test]
fn spdy_session_over_real_tcp() {
    let mut pipe = Pipe::new(25);
    let mut client = SpdySession::new(Role::Client, SpdyConfig::default());
    let mut server = SpdySession::new(Role::Server, SpdyConfig::default());

    // Client opens 10 prioritized streams.
    let ids: Vec<u32> = (0..10)
        .map(|i| {
            client.open_stream(
                vec![
                    (":path".into(), format!("/obj{i}")),
                    (":host".into(), "stack.example".into()),
                ],
                (i % 8) as u8,
                true,
            )
        })
        .collect();
    while let Some(w) = client.poll_wire() {
        pipe.a.write(w);
    }
    let (_, to_b) = pipe.settle();
    let events = server
        .on_bytes(Payload::from(to_b))
        .expect("valid frames over TCP");
    let opened: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            SpdyEvent::StreamOpened { stream_id, .. } => Some(*stream_id),
            _ => None,
        })
        .collect();
    assert_eq!(opened, ids, "all streams arrive in order over TCP");

    // Server answers each with a body; bodies multiplex back over TCP.
    for &sid in &ids {
        server.reply(sid, vec![(":status".into(), "200".into())], false);
        server.send_data(sid, Payload::from(vec![sid as u8; 20_000]), true);
    }
    let mut delivered = 0u64;
    for _ in 0..100 {
        while let Some(w) = server.poll_wire() {
            pipe.b.write(w);
        }
        let (to_a, _) = pipe.settle();
        if to_a.is_empty() {
            break;
        }
        for ev in client.on_bytes(Payload::from(to_a)).expect("valid") {
            if let SpdyEvent::Data {
                stream_id, payload, ..
            } = ev
            {
                client.consume(stream_id, payload.len() as u32);
                delivered += payload.len();
            }
        }
        // Send any window updates back.
        while let Some(w) = client.poll_wire() {
            pipe.a.write(w);
        }
        pipe.settle();
    }
    assert_eq!(
        delivered,
        10 * 20_000,
        "all bodies arrive despite 64 KiB stream windows"
    );
}

#[test]
fn http_request_response_over_real_tcp() {
    let mut pipe = Pipe::new(40);
    let mut client = HttpClientConn::new();
    let mut server = HttpServerConn::new();
    for round in 0..5u64 {
        let wire = client.send_request(round, &Request::get("o.example", format!("/r{round}")));
        pipe.a.write(wire);
        let (_, to_b) = pipe.settle();
        let reqs = server.on_bytes(Payload::from(to_b)).expect("parse");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, format!("/r{round}"));
        let resp = server.encode_response(&Response::ok(Payload::from(vec![round as u8; 30_000])));
        pipe.b.write(resp);
        let (to_a, _) = pipe.settle();
        let done = client.on_bytes(Payload::from(to_a)).expect("parse");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, round);
        assert_eq!(done[0].1.body.len(), 30_000);
    }
}

#[test]
fn spdy_header_compression_beats_http_header_bytes() {
    // The uplink-byte comparison behind SPDY's header-compression claim:
    // the same 40 requests cost far fewer bytes as SYN_STREAMs.
    let headers = |i: u32| {
        vec![
            (":method".to_string(), "GET".to_string()),
            (":host".to_string(), "news.example".to_string()),
            (":path".to_string(), format!("/article/{i}/image.png")),
            (
                "user-agent".to_string(),
                "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.11 Chrome/23.0".to_string(),
            ),
            (
                "cookie".to_string(),
                "sid=0123456789abcdef0123456789abcdef".to_string(),
            ),
            (
                "accept-encoding".to_string(),
                "gzip,deflate,sdch".to_string(),
            ),
        ]
    };
    let mut spdy_bytes = 0u64;
    let mut session = SpdySession::new(Role::Client, SpdyConfig::default());
    for i in 0..40 {
        session.open_stream(headers(i), 2, true);
    }
    while let Some(w) = session.poll_wire() {
        spdy_bytes += w.len();
    }
    let mut http_bytes = 0u64;
    for i in 0..40 {
        let mut req = Request::get("news.example", format!("/article/{i}/image.png"));
        for (n, v) in headers(i).into_iter().filter(|(n, _)| !n.starts_with(':')) {
            req = req.with_header(&n, &v);
        }
        http_bytes += req.encode().len();
    }
    assert!(
        spdy_bytes * 2 < http_bytes,
        "SPDY request bytes ({spdy_bytes}) under half of HTTP's ({http_bytes})"
    );
}
