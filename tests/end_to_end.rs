//! End-to-end integration tests: full page loads through every layer of
//! the testbed (browser → SPDY/HTTP → TCP → RRC-gated link → proxy →
//! wired → origins) on every network preset.

use spdyier::core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode, RunResult};
use spdyier::sim::SimDuration;
use spdyier::workload::VisitSchedule;

fn run(protocol: ProtocolMode, network: NetworkKind, sites: Vec<u32>, seed: u64) -> RunResult {
    let cfg = ExperimentConfig::paper_3g(protocol, seed)
        .with_network(network)
        .with_schedule(VisitSchedule::sequential(sites, SimDuration::from_secs(60)));
    run_experiment(cfg)
}

#[test]
fn every_network_and_protocol_completes_a_load() {
    for network in [
        NetworkKind::Wifi,
        NetworkKind::Umts3G,
        NetworkKind::Umts3GPinned,
        NetworkKind::Lte,
    ] {
        for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
            let r = run(protocol, network, vec![12], 1);
            assert_eq!(r.visits.len(), 1, "{network:?}/{protocol:?}");
            assert!(
                r.visits[0].completed,
                "{network:?}/{protocol:?} failed to complete"
            );
            assert!(r.visits[0].plt_ms > 0.0);
        }
    }
}

#[test]
fn completed_visits_have_complete_object_timings() {
    let r = run(ProtocolMode::spdy(), NetworkKind::Umts3G, vec![5, 9], 2);
    for v in &r.visits {
        assert!(v.completed);
        assert_eq!(v.object_timings.len(), v.object_count);
        for (i, t) in v.object_timings.iter().enumerate() {
            assert!(t.discovered.is_some(), "object {i} never discovered");
            assert!(t.requested.is_some(), "object {i} never requested");
            assert!(t.first_byte.is_some(), "object {i} no first byte");
            assert!(t.complete.is_some(), "object {i} never completed");
            let d = t.discovered.unwrap();
            let rq = t.requested.unwrap();
            let fb = t.first_byte.unwrap();
            let c = t.complete.unwrap();
            assert!(
                d <= rq && rq <= fb && fb <= c,
                "object {i} boundaries ordered"
            );
        }
    }
}

#[test]
fn network_ordering_wifi_lte_3g() {
    // WiFi < LTE < 3G page load times for the same site and protocol.
    let wifi = run(ProtocolMode::Http, NetworkKind::Wifi, vec![5], 3);
    let lte = run(ProtocolMode::Http, NetworkKind::Lte, vec![5], 3);
    let g3 = run(ProtocolMode::Http, NetworkKind::Umts3G, vec![5], 3);
    let (w, l, g) = (
        wifi.visits[0].plt_ms,
        lte.visits[0].plt_ms,
        g3.visits[0].plt_ms,
    );
    assert!(w < l, "WiFi ({w}) faster than LTE ({l})");
    assert!(l < g, "LTE ({l}) faster than 3G ({g})");
}

#[test]
fn three_g_pays_the_promotion_delay() {
    let pinned = run(ProtocolMode::spdy(), NetworkKind::Umts3GPinned, vec![9], 4);
    let normal = run(ProtocolMode::spdy(), NetworkKind::Umts3G, vec![9], 4);
    // Same bearer; the only difference is the RRC machine. The promotion is
    // ~2 s, so the gap must be at least one second.
    assert!(
        normal.visits[0].plt_ms > pinned.visits[0].plt_ms + 1_000.0,
        "promotion cost visible: {} vs {}",
        normal.visits[0].plt_ms,
        pinned.visits[0].plt_ms
    );
    assert!(!normal.promotions.is_empty());
    assert!(pinned.promotions.is_empty());
}

#[test]
fn determinism_full_stack() {
    let a = run(ProtocolMode::spdy(), NetworkKind::Umts3G, vec![7, 12], 9);
    let b = run(ProtocolMode::spdy(), NetworkKind::Umts3G, vec![7, 12], 9);
    let plts_a: Vec<f64> = a.visits.iter().map(|v| v.plt_ms).collect();
    let plts_b: Vec<f64> = b.visits.iter().map(|v| v.plt_ms).collect();
    assert_eq!(plts_a, plts_b);
    assert_eq!(a.total_retransmissions, b.total_retransmissions);
    assert_eq!(a.promotions.len(), b.promotions.len());
    assert_eq!(a.energy_mj, b.energy_mj);
}

#[test]
fn different_seeds_vary() {
    let a = run(ProtocolMode::Http, NetworkKind::Umts3G, vec![7], 1);
    let b = run(ProtocolMode::Http, NetworkKind::Umts3G, vec![7], 2);
    assert_ne!(
        a.visits[0].plt_ms, b.visits[0].plt_ms,
        "seeds must actually vary the run"
    );
}

#[test]
fn proxy_records_cover_every_object() {
    let r = run(ProtocolMode::spdy(), NetworkKind::Wifi, vec![5], 5);
    // Every page object produced a proxy-side fetch record.
    assert!(r.proxy_records.len() >= r.visits[0].object_count);
    for rec in &r.proxy_records {
        assert!(
            rec.origin_first_byte.is_some(),
            "record {:?} missing first byte",
            rec.fetch
        );
        assert!(rec.origin_done.is_some());
    }
}

#[test]
fn energy_accounting_is_positive_on_cellular() {
    let r = run(ProtocolMode::Http, NetworkKind::Umts3G, vec![9], 6);
    assert!(r.energy_mj > 0.0);
    let wifi = run(ProtocolMode::Http, NetworkKind::Wifi, vec![9], 6);
    assert_eq!(wifi.energy_mj, 0.0, "no radio model on WiFi");
}

#[test]
fn spdy_single_connection_http_many() {
    let s = run(ProtocolMode::spdy(), NetworkKind::Wifi, vec![15], 7);
    let h = run(ProtocolMode::Http, NetworkKind::Wifi, vec![15], 7);
    assert_eq!(s.connections_opened, 1, "one SPDY session");
    assert!(
        h.connections_opened >= 10,
        "HTTP pools many connections for an 85-domain site, got {}",
        h.connections_opened
    );
}

#[test]
fn multiconn_spdy_opens_n_sessions() {
    let r = run(
        ProtocolMode::Spdy {
            connections: 20,
            late_binding: false,
        },
        NetworkKind::Wifi,
        vec![9],
        8,
    );
    assert_eq!(r.connections_opened, 20);
    assert!(r.visits[0].completed);
}

#[test]
fn late_binding_still_loads_pages() {
    let r = run(
        ProtocolMode::Spdy {
            connections: 4,
            late_binding: true,
        },
        NetworkKind::Wifi,
        vec![5, 9],
        9,
    );
    assert!(
        r.visits.iter().all(|v| v.completed),
        "late binding delivers everything"
    );
}

#[test]
fn custom_pages_load() {
    let page = spdyier::workload::test_page(50, 40_000, true);
    let cfg = ExperimentConfig::paper_3g(ProtocolMode::spdy(), 1)
        .with_network(NetworkKind::Umts3G)
        .with_schedule(VisitSchedule::sequential(
            vec![1],
            SimDuration::from_secs(60),
        ))
        .with_custom_pages(vec![page]);
    let r = run_experiment(cfg);
    assert!(r.visits[0].completed);
    assert_eq!(r.visits[0].object_count, 51);
}
