//! The paper's headline qualitative results, asserted as tests. These are
//! the "shape" checks EXPERIMENTS.md reports: who wins, roughly by how
//! much, and which mechanism is responsible.

use spdyier::core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode, RunResult};
use spdyier::sim::{DetRng, SimDuration};
use spdyier::workload::VisitSchedule;

fn paired(network: NetworkKind, seed: u64) -> (RunResult, RunResult) {
    let mut rng = DetRng::new(seed + 1000);
    let schedule = VisitSchedule::paper_default(&mut rng);
    let http = run_experiment(
        ExperimentConfig::paper_3g(ProtocolMode::Http, seed)
            .with_network(network)
            .with_schedule(schedule.clone()),
    );
    let spdy = run_experiment(
        ExperimentConfig::paper_3g(ProtocolMode::spdy(), seed)
            .with_network(network)
            .with_schedule(schedule),
    );
    (http, spdy)
}

#[test]
fn wifi_spdy_clearly_outperforms_http() {
    // Paper Fig. 4: SPDY beats HTTP on (almost) every site over WiFi.
    let (http, spdy) = paired(NetworkKind::Wifi, 0);
    let wins = http
        .visits
        .iter()
        .zip(spdy.visits.iter())
        .filter(|(h, s)| s.plt_ms < h.plt_ms)
        .count();
    assert!(wins >= 15, "SPDY won only {wins}/20 sites on WiFi");
    let h_mean: f64 = http.visits.iter().map(|v| v.plt_ms).sum::<f64>() / 20.0;
    let s_mean: f64 = spdy.visits.iter().map(|v| v.plt_ms).sum::<f64>() / 20.0;
    assert!(
        s_mean < h_mean * 0.95,
        "SPDY meaningfully faster on WiFi: {s_mean:.0} vs {h_mean:.0}"
    );
}

#[test]
fn cellular_erases_spdys_advantage() {
    // Paper Fig. 3: no convincing winner over 3G. Assert neither side
    // dominates across seeds (per-run variance is substantial, exactly as
    // the paper's wide whiskers show): pooled mean PLTs within 25% of
    // each other and each protocol wins a meaningful share of visits.
    let mut h_sum = 0.0;
    let mut s_sum = 0.0;
    let mut spdy_wins = 0usize;
    let mut visits = 0usize;
    for seed in 0..3u64 {
        let http = spdyier::experiments::run_schedule(
            ProtocolMode::Http,
            NetworkKind::Umts3G,
            seed,
            false,
        );
        let spdy = spdyier::experiments::run_schedule(
            ProtocolMode::spdy(),
            NetworkKind::Umts3G,
            seed,
            false,
        );
        h_sum += http.visits.iter().map(|v| v.plt_ms).sum::<f64>();
        s_sum += spdy.visits.iter().map(|v| v.plt_ms).sum::<f64>();
        spdy_wins += http
            .visits
            .iter()
            .zip(spdy.visits.iter())
            .filter(|(h, s)| s.plt_ms < h.plt_ms)
            .count();
        visits += http.visits.len();
    }
    let ratio = s_sum / h_sum;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "3G pooled means within 25%: ratio {ratio:.2}"
    );
    let share = spdy_wins as f64 / visits as f64;
    assert!(
        (0.15..=0.85).contains(&share),
        "both protocols win a meaningful share on 3G; SPDY won {spdy_wins}/{visits}"
    );
}

#[test]
fn spdys_wifi_advantage_shrinks_on_3g() {
    // The crossover itself: SPDY's relative advantage on WiFi must exceed
    // its advantage (if any) on 3G.
    let adv = |h: &RunResult, s: &RunResult| {
        let hm: f64 = h.visits.iter().map(|v| v.plt_ms).sum::<f64>();
        let sm: f64 = s.visits.iter().map(|v| v.plt_ms).sum::<f64>();
        (hm - sm) / hm
    };
    // Average over seeds: per-seed 3G variance is large (it is in the
    // paper too — that is rather the point). Use the experiment harness's
    // own schedules so this asserts exactly what EXPERIMENTS.md reports.
    let mut wifi_adv = 0.0;
    let mut g3_adv = 0.0;
    for seed in [0, 1, 2] {
        let http_w =
            spdyier::experiments::run_schedule(ProtocolMode::Http, NetworkKind::Wifi, seed, false);
        let spdy_w = spdyier::experiments::run_schedule(
            ProtocolMode::spdy(),
            NetworkKind::Wifi,
            seed,
            false,
        );
        let http_g = spdyier::experiments::run_schedule(
            ProtocolMode::Http,
            NetworkKind::Umts3G,
            seed,
            false,
        );
        let spdy_g = spdyier::experiments::run_schedule(
            ProtocolMode::spdy(),
            NetworkKind::Umts3G,
            seed,
            false,
        );
        wifi_adv += adv(&http_w, &spdy_w) / 3.0;
        g3_adv += adv(&http_g, &spdy_g) / 3.0;
    }
    assert!(
        wifi_adv > g3_adv,
        "SPDY advantage shrinks on 3G: wifi {wifi_adv:.3} vs 3G {g3_adv:.3}"
    );
}

#[test]
fn retransmissions_are_overwhelmingly_spurious_on_3g() {
    // Paper §5.5.2: upon inspection, all retransmissions in an HTTP run
    // were spurious. Our testbed counts actual downlink drops directly.
    let (http, spdy) = paired(NetworkKind::Umts3G, 2);
    for r in [&http, &spdy] {
        let (queue_drops, loss_drops) = r.downlink_drops;
        let drops = queue_drops + loss_drops;
        assert!(
            drops * 10 <= r.total_retransmissions.max(1),
            "{}: {} rtx but only {} real drops — spurious dominates",
            r.protocol,
            r.total_retransmissions,
            drops
        );
    }
}

#[test]
fn retransmissions_cluster_around_promotions() {
    let (_, spdy) = paired(NetworkKind::Umts3G, 3);
    let correlated = spdy.promotion_correlated_rtx(SimDuration::from_secs(2));
    assert!(
        correlated * 2 >= spdy.total_retransmissions as usize,
        "most SPDY rtx are promotion-correlated: {correlated}/{}",
        spdy.total_retransmissions
    );
}

#[test]
fn pinning_the_radio_slashes_retransmissions() {
    // Paper Fig. 14: ~91–96% reduction with the keepalive ping.
    let mut rng = DetRng::new(77);
    let schedule = VisitSchedule::paper_default(&mut rng);
    let base = run_experiment(
        ExperimentConfig::paper_3g(ProtocolMode::spdy(), 4)
            .with_network(NetworkKind::Umts3G)
            .with_schedule(schedule.clone()),
    );
    let mut cfg = ExperimentConfig::paper_3g(ProtocolMode::spdy(), 4)
        .with_network(NetworkKind::Umts3G)
        .with_schedule(schedule);
    cfg.keepalive_ping = Some(SimDuration::from_secs(3));
    let pinged = run_experiment(cfg);
    assert!(
        (pinged.total_retransmissions as f64) < base.total_retransmissions as f64 * 0.4,
        "ping removes most retransmissions: {} -> {}",
        base.total_retransmissions,
        pinged.total_retransmissions
    );
    let b_mean: f64 = base.visits.iter().map(|v| v.plt_ms).sum::<f64>() / 20.0;
    let p_mean: f64 = pinged.visits.iter().map(|v| v.plt_ms).sum::<f64>() / 20.0;
    assert!(
        p_mean < b_mean,
        "pinning improves PLT: {p_mean:.0} vs {b_mean:.0}"
    );
}

#[test]
fn lte_has_far_fewer_retransmissions_than_3g() {
    // Paper: 8.9/7.5 per run on LTE vs 117/63 on 3G. Average two seeds;
    // per-seed rtx counts vary.
    let (http_g1, spdy_g1) = paired(NetworkKind::Umts3G, 5);
    let (http_g2, spdy_g2) = paired(NetworkKind::Umts3G, 6);
    let (http_l1, spdy_l1) = paired(NetworkKind::Lte, 5);
    let (http_l2, spdy_l2) = paired(NetworkKind::Lte, 6);
    let sum = |a: &RunResult, b: &RunResult| a.total_retransmissions + b.total_retransmissions;
    let (http_g, spdy_g) = (sum(&http_g1, &http_g2), sum(&spdy_g1, &spdy_g2));
    let (http_l, spdy_l) = (sum(&http_l1, &http_l2), sum(&spdy_l1, &spdy_l2));
    assert!(
        (http_l as f64) < http_g as f64 * 0.5,
        "LTE HTTP rtx {http_l} ≪ 3G {http_g}"
    );
    // SPDY's LTE floor is one spurious rtx per promotion (RTO 200 ms vs
    // the 400 ms promotion), so the reduction is structurally ~2x here
    // versus the paper's ~8x; direction and mechanism match.
    assert!(
        (spdy_l as f64) < spdy_g as f64 * 0.67,
        "LTE SPDY rtx {spdy_l} ≪ 3G {spdy_g}"
    );
}

#[test]
fn proxy_transfer_leg_dominates_for_spdy() {
    // Paper Fig. 8: origin wait ~14 ms and download ~4 ms; the transfer to
    // the client dominates by an order of magnitude.
    let (_, spdy) = paired(NetworkKind::Umts3G, 6);
    let mut origin_ms = Vec::new();
    let mut transfer_ms = Vec::new();
    for rec in &spdy.proxy_records {
        if let (Some(w), Some(t)) = (rec.origin_wait(), rec.client_transfer()) {
            origin_ms.push(w.as_secs_f64() * 1e3);
            transfer_ms.push(t.as_secs_f64() * 1e3);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&transfer_ms) > 5.0 * mean(&origin_ms),
        "client transfer ({:.0} ms) dominates origin wait ({:.0} ms)",
        mean(&transfer_ms),
        mean(&origin_ms)
    );
}

#[test]
fn rtt_reset_eliminates_promotion_timeouts() {
    // Paper §6.2.1. Compare promotion-correlated rtx with and without the fix.
    let mut rng = DetRng::new(88);
    let schedule = VisitSchedule::paper_default(&mut rng);
    let base = run_experiment(
        ExperimentConfig::paper_3g(ProtocolMode::spdy(), 7)
            .with_network(NetworkKind::Umts3G)
            .with_schedule(schedule.clone()),
    );
    let mut cfg = ExperimentConfig::paper_3g(ProtocolMode::spdy(), 7)
        .with_network(NetworkKind::Umts3G)
        .with_schedule(schedule);
    cfg.tcp.reset_rtt_after_idle = true;
    let fixed = run_experiment(cfg);
    assert!(
        fixed.total_retransmissions * 3 < base.total_retransmissions.max(1),
        "rtt reset removes most rtx: {} -> {}",
        base.total_retransmissions,
        fixed.total_retransmissions
    );
}

#[test]
fn spdy_requests_everything_http_trickles() {
    // Paper Figs. 6/7: SPDY issues all discovered requests immediately;
    // HTTP is limited by its pool.
    let page = spdyier::workload::test_page(50, 40_000, true);
    let run_one = |protocol| {
        let cfg = ExperimentConfig::paper_3g(protocol, 1)
            .with_network(NetworkKind::Umts3G)
            .with_schedule(VisitSchedule::sequential(
                vec![1],
                SimDuration::from_secs(60),
            ))
            .with_custom_pages(vec![page.clone()]);
        run_experiment(cfg)
    };
    let spdy = run_one(ProtocolMode::spdy());
    let http = run_one(ProtocolMode::Http);
    let span = |r: &RunResult| {
        let v = &r.visits[0];
        let reqs: Vec<f64> = v.object_timings[1..]
            .iter()
            .filter_map(|t| t.requested)
            .map(|t| t.saturating_since(v.start).as_secs_f64())
            .collect();
        reqs.iter().cloned().fold(0.0, f64::max) - reqs.iter().cloned().fold(f64::MAX, f64::min)
    };
    assert!(span(&spdy) < 0.05, "SPDY requests all 50 within 50 ms");
    assert!(span(&http) > 0.5, "HTTP spreads requests over its pool");
}
