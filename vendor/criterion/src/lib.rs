//! Offline vendored stand-in for `criterion`.
//!
//! Keeps `cargo bench` harnesses compiling and running offline: each
//! benchmark executes its closure a small fixed number of times and prints
//! a wall-clock estimate per iteration. No statistics, no HTML reports.
//! See `vendor/README.md`.

use std::time::{Duration, Instant};

/// Iterations the stand-in runs per benchmark (after one warm-up call).
const STUB_ITERS: u32 = 10;

/// Wrap a value to hide it from the optimizer, like the real criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher {
    iters_run: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, timing it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..STUB_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_run = u64::from(STUB_ITERS);
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters_run == 0 {
        println!("bench {name}: no iterations run");
        return;
    }
    let per_iter = b.elapsed / b.iters_run as u32;
    let mut line = format!("bench {name}: {per_iter:?}/iter ({} iters)", b.iters_run);
    if let Some(t) = throughput {
        let secs = per_iter.as_secs_f64().max(f64::MIN_POSITIVE);
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!(", {:.1} MiB/s", n as f64 / secs / (1 << 20) as f64));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.1} elem/s", n as f64 / secs));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark. Accepts anything string-like for the
    /// name, as real criterion's `impl Into<BenchmarkId>` does.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters_run: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name.as_ref(), &b, None);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stand-in ignores measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark within the group. Accepts anything string-like for
    /// the name, as real criterion's `impl Into<BenchmarkId>` does.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters_run: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.as_ref()),
            &b,
            self.throughput,
        );
        self
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .measurement_time(Duration::from_millis(1))
            .throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
