//! JSON text -> [`Value`] parsing for the serde_json stand-in.
//!
//! A recursive-descent parser over the full JSON grammar (RFC 8259):
//! objects keep their textual key order (the stand-in's `Value::Object`
//! is an ordered pair list), numbers land in the narrowest fitting
//! variant (`U64` for non-negative integers, `I64` for negative ones,
//! `F64` otherwise), and every error carries a `line:column` position.
//! Duplicate object keys are preserved, matching real serde_json's
//! `Value` semantics; strict consumers (like the scenario manifest
//! decoder) reject them at their own layer.

use crate::{Error, Value};

/// Parse a complete JSON document.
pub fn from_str(s: &str) -> crate::Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Parse a complete JSON document from bytes (must be UTF-8).
pub fn from_slice(bytes: &[u8]) -> crate::Result<Value> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

/// Nesting ceiling: recursion depth is bounded so adversarial inputs
/// error out instead of overflowing the stack.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str, out: Value) -> crate::Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(out)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> crate::Result<Value> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.expect_word("true", Value::Bool(true)),
            Some(b'f') => self.expect_word("false", Value::Bool(false)),
            Some(b'n') => self.expect_word("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> crate::Result<Value> {
        self.pos += 1; // '{'
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Value::Object(entries));
            }
            return Err(self.err("expected ',' or '}' in object"));
        }
    }

    fn array(&mut self) -> crate::Result<Value> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            return Err(self.err("expected ',' or ']' in array"));
        }
    }

    fn string(&mut self) -> crate::Result<String> {
        self.pos += 1; // opening '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy runs of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unfinished escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate in \\u escape"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate in \\u escape"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> crate::Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("unfinished \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> crate::Result<Value> {
        let start = self.pos;
        let negative = self.eat(b'-');
        // Integer part: '0' alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(d) if d.is_ascii_digit() => {
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit in number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::U64(42));
        assert_eq!(from_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(from_str("2e3").unwrap(), Value::F64(2000.0));
        assert_eq!(from_str(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn objects_keep_textual_order() {
        let v = from_str(r#"{"z":1,"a":[true,null],"m":{"x":"y"}}"#).unwrap();
        let Value::Object(entries) = &v else {
            panic!("not an object")
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v["a"][0], Value::Bool(true));
        assert_eq!(v["m"]["x"], Value::Str("y".into()));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            from_str(r#""a\"b\\c\ndA""#).unwrap(),
            Value::Str("a\"b\\c\ndA".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            from_str(r#""😀""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn renders_parse_back_bytewise() {
        let v = from_str(r#"{"a":1,"b":[1.5,-2,"s"],"c":null,"d":{"e":false}}"#).unwrap();
        let rendered = crate::to_string(&v).unwrap();
        let reparsed = from_str(&rendered).unwrap();
        assert_eq!(crate::to_string(&reparsed).unwrap(), rendered);
    }

    #[test]
    fn errors_carry_positions() {
        let e = from_str("{\n  \"a\": 01\n}").unwrap_err().to_string();
        assert!(e.contains("line 2"), "{e}");
        let e = from_str("[1,]").unwrap_err().to_string();
        assert!(e.contains("column 4"), "{e}");
        assert!(from_str("").is_err());
        assert!(from_str("{}extra").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).unwrap_err().to_string().contains("deep"));
    }

    #[test]
    fn from_slice_checks_utf8() {
        assert_eq!(from_slice(b"[1]").unwrap(), Value::Array(vec![Value::U64(1)]));
        assert!(from_slice(&[0xFF, 0xFE]).is_err());
    }
}
