//! Offline vendored stand-in for `serde_json`.
//!
//! Backed by the serde stand-in's [`Value`] tree: `to_string` /
//! `to_string_pretty` render any `serde::Serialize` type, [`from_str`] /
//! [`from_slice`] parse JSON text back into a `Value`, and the
//! [`json!`] macro builds `Value` literals (objects, arrays, scalars, and
//! embedded `Serialize` expressions). Object key order is insertion order,
//! so rendering is deterministic. See `vendor/README.md`.

mod de;

pub use de::{from_str, from_slice};
pub use serde::Value;

/// Serialization/deserialization error. Rendering is infallible in the
/// stand-in, so only the [`from_str`]/[`from_slice`] parsing path ever
/// produces one; the message carries a `line:column` position.
#[derive(Debug)]
pub struct Error(pub(crate) String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Render `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().render_compact(&mut out);
    Ok(out)
}

/// Render `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_value().render_pretty(&mut out, 0);
    Ok(out)
}

/// Render `value` into a `Vec<u8>` of compact JSON.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Build a [`Value`] from JSON-ish syntax. Supports objects, arrays,
/// `null`, and arbitrary `Serialize` expressions in value position
/// (multi-token expressions are accumulated up to the next top-level
/// comma by the `__json_*` muncher macros).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($body:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __arr: Vec<$crate::Value> = Vec::new();
        $crate::__json_arr!(__arr; $($body)*);
        $crate::Value::Array(__arr)
    }};
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __obj: Vec<(String, $crate::Value)> = Vec::new();
        $crate::__json_obj!(__obj; $($body)*);
        $crate::Value::Object(__obj)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

/// Object-body muncher for [`json!`]: `key : value , ...`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_obj {
    ($obj:ident; ) => {};
    ($obj:ident; $key:tt : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::__json_obj!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::__json_obj!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::__json_obj!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:tt : $($rest:tt)*) => {
        $crate::__json_val!($obj; $key; []; $($rest)*);
    };
}

/// Expression-value accumulator for [`__json_obj!`]: gathers tokens until
/// a top-level comma (groups are atomic, so embedded commas are safe).
#[doc(hidden)]
#[macro_export]
macro_rules! __json_val {
    ($obj:ident; $key:tt; [$($acc:tt)+]; ) => {
        $obj.push(($key.to_string(),
            $crate::to_value(&($($acc)+)).expect("json! value serializes")));
    };
    ($obj:ident; $key:tt; [$($acc:tt)+]; , $($rest:tt)*) => {
        $obj.push(($key.to_string(),
            $crate::to_value(&($($acc)+)).expect("json! value serializes")));
        $crate::__json_obj!($obj; $($rest)*);
    };
    ($obj:ident; $key:tt; [$($acc:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::__json_val!($obj; $key; [$($acc)* $next]; $($rest)*);
    };
}

/// Array-body muncher for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __json_arr {
    ($arr:ident; ) => {};
    ($arr:ident; null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $crate::__json_arr!($arr; $($($rest)*)?);
    };
    ($arr:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::__json_arr!($arr; $($($rest)*)?);
    };
    ($arr:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::__json_arr!($arr; $($($rest)*)?);
    };
    ($arr:ident; $($rest:tt)*) => {
        $crate::__json_arr_val!($arr; []; $($rest)*);
    };
}

/// Expression-element accumulator for [`__json_arr!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __json_arr_val {
    ($arr:ident; [$($acc:tt)+]; ) => {
        $arr.push($crate::to_value(&($($acc)+)).expect("json! value serializes"));
    };
    ($arr:ident; [$($acc:tt)+]; , $($rest:tt)*) => {
        $arr.push($crate::to_value(&($($acc)+)).expect("json! value serializes"));
        $crate::__json_arr!($arr; $($rest)*);
    };
    ($arr:ident; [$($acc:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::__json_arr_val!($arr; [$($acc)* $next]; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_objects_arrays_exprs() {
        let n = 3u32;
        let v = json!({ "a": n, "b": [1, 2, { "c": null }], "d": "s" });
        assert_eq!(
            crate::to_string(&v).unwrap(),
            r#"{"a":3,"b":[1,2,{"c":null}],"d":"s"}"#
        );
    }

    #[test]
    fn json_macro_multi_token_values() {
        let xs = [10u32, 20, 30];
        let v = json!({
            "sum": xs.iter().copied().sum::<u32>(),
            "slice": &xs[1..],
            "fmt": format!("{}-{}", 1, 2),
        });
        assert_eq!(
            crate::to_string(&v).unwrap(),
            r#"{"sum":60,"slice":[20,30],"fmt":"1-2"}"#
        );
    }

    #[test]
    fn pretty_matches_structure() {
        let v = json!({ "k": [true] });
        assert_eq!(
            crate::to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    true\n  ]\n}"
        );
    }
}
