//! Offline vendored stand-in for the `rand` crate.
//!
//! Provides the subset spdyier uses: `SmallRng` (xoshiro256++, the same
//! algorithm `rand` 0.8 uses on 64-bit targets, seeded via SplitMix64 like
//! `rand_core`'s `seed_from_u64`), the `Rng`/`RngCore`/`SeedableRng`
//! traits, `gen::<f64>()` (53-bit mantissa uniform in `[0, 1)`) and
//! `gen_range` over integer ranges (widening-multiply rejection sampling,
//! matching `rand` 0.8's `UniformInt::sample_single`). Draw sequences are
//! bit-identical to upstream `rand` 0.8 + `SmallRng` for these entry
//! points, so seeds keep their meaning.

/// Core RNG interface: a source of random words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half discarded, as `rand_core` does for
    /// 64-bit generators).
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8 Standard for f64: 53 random mantissa bits scaled into
        // [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // rand 0.8 samples a u32 and tests the top bit.
        (rng.next_u32() as i32) < 0
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform draw in `[0, range)` via widening multiply with
/// rejection — the exact `sample_single` scheme of rand 0.8's
/// `UniformInt<u64>`.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128).wrapping_mul(range as u128);
        let (hi, lo) = ((m >> 64) as u64, m as u64);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`] (the `rand::Rng` subset used).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion (identical to
    /// `rand_core`'s default `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator: xoshiro256++ — what
    /// `rand` 0.8's `SmallRng` is on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                // All-zero state is a fixed point; nudge it (upstream uses
                // the same guard in rand_xoshiro).
                s = [1, 2, 3, 4];
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> SmallRng {
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
            }
            SmallRng::from_seed(seed)
        }
    }

    /// Alias: spdyier never uses `StdRng`, but keep the name available.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }
}
