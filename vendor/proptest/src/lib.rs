//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset the spdyier test-suite uses: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), [`Strategy`] implementations
//! for integer/float ranges, tuples, `any::<T>()`, and
//! `prop::collection::vec`, plus the `prop_assert*` macros. Each property
//! runs its configured number of cases with inputs drawn from a
//! deterministic per-test RNG (seeded from the test's name), so failures
//! reproduce. No shrinking — a failing case panics with its inputs
//! Debug-printed. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Deterministic test-input RNG (xoshiro256++ seeded by SplitMix64).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary label (e.g. the property's name).
    pub fn from_label(label: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Seed from a u64.
    pub fn from_seed(mut seed: u64) -> TestRng {
        let mut next = || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = (n << n.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let m = (v as u128).wrapping_mul(n as u128);
            if (m as u64) <= zone {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value: std::fmt::Debug;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident=$idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A=0);
    (A=0, B=1);
    (A=0, B=1, C=2);
    (A=0, B=1, C=2, D=3);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy object.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Strategy combinators namespace (mirrors `proptest::prelude::prop`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths in `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property, reported with the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` drawing its arguments from the strategies for the
/// configured number of cases.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
    // Without one.
    ($($rest:tt)*) => {
        $crate::__proptest_fns!({ $crate::ProptestConfig::default() } $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({ $config:expr }) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_label(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                let inputs = format!(
                    concat!("case {}/{}: ", $(concat!(stringify!($arg), " = {:?} ")),+),
                    case + 1, config.cases, $(&$arg),+
                );
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(e) = result {
                    eprintln!("proptest stub: property failed on {inputs}");
                    std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_fns!({ $config } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_sample_componentwise((a, b) in (0u32..5, 10u32..20)) {
            prop_assert!(a < 5);
            prop_assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
