//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API that the spdyier workspace
//! uses: cheap reference-counted [`Bytes`] slices, a growable [`BytesMut`],
//! and the [`Buf`]/[`BufMut`] cursor traits. Semantics match the upstream
//! crate for every method provided (panics on out-of-range exactly like
//! upstream). See `vendor/README.md` for why this exists.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty byte slice.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A `Bytes` viewing a static slice (copied here; upstream borrows).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copy an arbitrary slice into a new `Bytes`.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `at` bytes, keeping the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Shorten to at most `len` bytes; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// Split off and return the tail starting at `at`, keeping the head.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// A sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Consume the first `cnt` bytes (inherent, like upstream `bytes`
    /// where `Buf` is in scope; the trait impl delegates here).
    pub fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }

    /// Re-join `other` onto the end of `self` without copying when the
    /// two views are adjacent slices of the same backing allocation
    /// (i.e. `other` was split off the end of `self`). Returns `other`
    /// unchanged otherwise.
    pub fn try_unsplit(&mut self, other: Bytes) -> Result<(), Bytes> {
        if Arc::ptr_eq(&self.data, &other.data) && self.end == other.start {
            self.end = other.end;
            Ok(())
        } else {
            Err(other)
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// A unique, growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor for the `Buf` impl (bytes before it are consumed).
    pos: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }

    /// Shorten to `len` unconsumed bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.buf.truncate(self.pos + len);
        }
    }

    /// Split off and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.buf[self.pos..self.pos + at].to_vec();
        self.buf.drain(..self.pos + at);
        self.pos = 0;
        BytesMut { buf: head, pos: 0 }
    }

    /// Convert into an immutable `Bytes`.
    pub fn freeze(mut self) -> Bytes {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
        }
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut {
            buf: s.to_vec(),
            pos: 0,
        }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Read cursor over a contiguous buffer (upstream `bytes::Buf` subset).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte (big-endian like all `get_*`).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Copy the next `len` bytes out as a `Bytes`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes out of bounds");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        Bytes::advance(self, cnt);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable buffer (upstream `bytes::BufMut` subset).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_split_and_slice() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let tail = b.split_off(1);
        assert_eq!(&b[..], &[3]);
        assert_eq!(&tail[..], &[4, 5]);
        assert_eq!(&tail.slice(1..)[..], &[5]);
    }

    #[test]
    fn bytesmut_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u32(0x01020304);
        m.put_u8(9);
        assert_eq!(m.len(), 5);
        assert_eq!(m.get_u32(), 0x01020304);
        assert_eq!(m.get_u8(), 9);
        assert!(m.is_empty());
    }

    #[test]
    fn bytes_advance_and_unsplit() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(&b[..], &[3, 4, 5]);
        let tail = b.split_off(1);
        assert!(b.try_unsplit(tail).is_ok());
        assert_eq!(&b[..], &[3, 4, 5]);
        let unrelated = Bytes::from(vec![9]);
        assert!(b.try_unsplit(unrelated).is_err());
    }

    #[test]
    fn buf_on_slice() {
        let mut s: &[u8] = &[0, 0, 0, 7, 42];
        assert_eq!(s.get_u32(), 7);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 42);
    }
}
