//! Offline vendored `#[derive(Serialize, Deserialize)]` for the serde
//! stand-in. Hand-rolled token parsing (no syn/quote): supports
//! non-generic structs (named, tuple, unit) and enums (unit, tuple and
//! struct variants), plus `#[serde(transparent)]`. That covers every
//! serialized type in the spdyier workspace; anything fancier panics at
//! compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    /// Named field identifier, or the index for tuple fields.
    name: String,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    transparent: bool,
    shape: Shape,
}

/// Advance past attributes (`#[...]`), returning whether any of them is
/// `serde(transparent)`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut transparent = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let body = g.stream().to_string().replace(' ', "");
                    if body.starts_with("serde(") && body.contains("transparent") {
                        transparent = true;
                    }
                    *i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    transparent
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip a type up to a top-level `,` (or end), tracking `<...>` depth so
/// commas inside generics don't terminate early. Groups are atomic tokens,
/// so parens/brackets need no tracking.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i64 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            },
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde stub derive: expected field name, got {:?}", tokens[i]);
        };
        fields.push(Field {
            name: name.to_string(),
        });
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected ':', got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        i += 1; // the ',' (or past the end)
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        i += 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde stub derive: expected variant name, got {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                i += 1;
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let transparent = skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("serde stub derive: expected struct/enum, got {:?}", tokens[i]);
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde stub derive: expected item name, got {:?}", tokens[i]);
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type `{name}` is not supported");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde stub derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde stub derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };
    Item {
        name,
        transparent,
        shape,
    }
}

fn named_fields_to_object(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), serde::Serialize::to_value(&{}{})),",
                f.name, access_prefix, f.name
            )
        })
        .collect();
    format!("serde::Value::Object(vec![{}])", entries.join(""))
}

/// Derive `Serialize` (the stand-in's direct-to-value flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            if item.transparent {
                assert!(
                    fields.len() == 1,
                    "serde stub derive: transparent needs exactly one field"
                );
                format!("serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                named_fields_to_object(fields, "self.")
            }
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(""))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => serde::Value::Object(vec![({vname:?}.to_string(), serde::Serialize::to_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Serialize::to_value(f{k}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Object(vec![({vname:?}.to_string(), serde::Value::Array(vec![{}]))]),",
                                binds.join(","),
                                items.join("")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = named_fields_to_object(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),",
                                binds.join(",")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serde stub derive: generated impl parses")
}

/// Derive the `Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde stub derive: generated impl parses")
}
