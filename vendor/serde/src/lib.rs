//! Offline vendored stand-in for `serde`.
//!
//! Real serde is a zero-overhead visitor framework; this stand-in is a
//! direct-to-JSON-value model: [`Serialize`] renders a type into a
//! [`Value`] tree, which `serde_json` (the sibling stub) prints. The
//! `derive` feature re-exports `#[derive(Serialize, Deserialize)]` proc
//! macros from the vendored `serde_derive`, which understand the struct /
//! enum shapes and the `#[serde(transparent)]` attribute used in this
//! workspace. See `vendor/README.md`.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types renderable as a JSON [`Value`].
pub trait Serialize {
    /// Render `self` as a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Marker for types that claim deserializability. The workspace never
/// deserializes at runtime, so no decoding machinery is provided.
pub trait Deserialize: Sized {}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<K: AsRef<str>, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort object keys (BTreeMap-like order).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
