//! The JSON value tree and its (compact and pretty) printers.

/// A JSON value. Object entries keep insertion order, like `serde_json`
/// with its `preserve_order` feature; this makes serialization output a
/// deterministic function of the serialized data — the property the
/// testbed's byte-identity checks rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (ordered key/value pairs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// The f64 behind any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The u64 behind an unsigned variant.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string behind a string variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements behind an array variant.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean behind a bool variant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render compactly (no whitespace), `serde_json::to_string` style.
    pub fn render_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => push_f64(out, *v),
            Value::Str(s) => push_json_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(out, k);
                    out.push(':');
                    v.render_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Render with 2-space indentation, `serde_json::to_string_pretty`
    /// style.
    pub fn render_pretty(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    item.render_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    push_json_string(out, k);
                    out.push_str(": ");
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            other => other.render_compact(out),
        }
    }
}

/// serde_json renders non-finite floats as `null`; finite floats use the
/// shortest representation that round-trips (Rust's `{:?}` for f64).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shared `Null` for out-of-range / missing-key indexing.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.render_compact(&mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
            ("d".into(), Value::F64(1.5)),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null],"c":"x\"y","d":1.5}"#);
    }

    #[test]
    fn pretty_rendering_has_indentation() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::U64(1)]))]);
        let mut s = String::new();
        v.render_pretty(&mut s, 0);
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn float_whole_numbers_keep_decimal_point() {
        let mut s = String::new();
        Value::F64(2.0).render_compact(&mut s);
        assert_eq!(s, "2.0");
    }
}
