//! # spdyier
//!
//! A full reproduction testbed for **“Towards a SPDY'ier Mobile Web?”**
//! (Erman, Gopalakrishnan, Jana, Ramakrishnan — ACM CoNEXT 2013), built as
//! a deterministic discrete-event simulation in pure Rust.
//!
//! The paper measures HTTP/1.1 against SPDY through protocol proxies over a
//! production 3G (and LTE) network and finds that — unlike on wired/WiFi —
//! **SPDY does not clearly outperform HTTP over cellular**, because TCP's
//! retained RTT estimate becomes invalid across cellular radio (RRC)
//! idle→active promotions, firing spurious retransmission timeouts that
//! collapse the congestion window of SPDY's single long-lived connection.
//!
//! This meta-crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | discrete-event engine: time, event queue, RNG, statistics |
//! | [`payload`] | the zero-copy [`payload::Payload`] rope the data plane rides on |
//! | [`net`] | links: serialization + queueing + jitter + loss |
//! | [`cellular`] | 3G/LTE RRC state machines, promotion delays, energy |
//! | [`tcp`] | sans-IO TCP: Reno/Cubic, RFC 6298 RTO, idle-restart semantics |
//! | [`http`] | HTTP/1.1 codec, persistent connections, Chrome pool policy |
//! | [`spdy`] | SPDY/3 framing, stateful header compression, priority mux |
//! | [`browser`] | page loads: dependency discovery, eval, timing splits |
//! | [`origin`] | origin server model (Fig. 8-calibrated latencies) |
//! | [`proxy`] | HTTP and SPDY proxy cores + §6.1 variants |
//! | [`workload`] | Table 1 corpus, page synthesis, visit schedules |
//! | [`trace`] | flight recorder: typed event bus, sinks, metrics registry |
//! | [`causal`] | critical-path engine: per-visit PLT decomposition, cross-run diff attribution |
//! | [`prof`] | host-side self-profiler: counting allocator, spans, sweep heartbeats |
//! | [`core`] | the assembled testbed driver and experiment configs |
//! | [`experiments`] | regenerate every paper table/figure |
//!
//! ## Quickstart
//!
//! ```no_run
//! use spdyier::core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode};
//!
//! let cfg = ExperimentConfig::paper_3g(ProtocolMode::spdy(), 42)
//!     .with_network(NetworkKind::Umts3G);
//! let result = run_experiment(cfg);
//! for v in &result.visits {
//!     println!("site {:>2}: {:.0} ms", v.site, v.plt_ms);
//! }
//! println!("retransmissions: {}", result.total_retransmissions);
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub use spdyier_browser as browser;
pub use spdyier_bytes as payload;
pub use spdyier_causal as causal;
pub use spdyier_cellular as cellular;
pub use spdyier_core as core;
pub use spdyier_experiments as experiments;
pub use spdyier_http as http;
pub use spdyier_net as net;
pub use spdyier_origin as origin;
pub use spdyier_prof as prof;
pub use spdyier_proxy as proxy;
pub use spdyier_sim as sim;
pub use spdyier_spdy as spdy;
pub use spdyier_tcp as tcp;
pub use spdyier_trace as trace;
pub use spdyier_workload as workload;
